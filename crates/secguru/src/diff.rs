//! Semantic policy diffing: what traffic changes hands between two
//! policy versions?
//!
//! §3.3's core difficulty — "the semantics and the size together made
//! it difficult for engineers to assess the impact of changes to the
//! ACL manually" — is answered by a semantic diff: the set of packets
//! on which the old and new policies disagree, with witnesses. The SMT
//! formulation is one satisfiability query per direction:
//!
//! ```text
//! newly-denied   :  P_old(x̄) ∧ ¬P_new(x̄)
//! newly-permitted: ¬P_old(x̄) ∧  P_new(x̄)
//! ```
//!
//! An exact interval (box-algebra) implementation backs the SMT path
//! for differential testing and for enumerating *all* changed regions
//! rather than one witness.

use crate::engine::{policy_expr, IntervalEngine, PacketVars};
use crate::model::{Action, Contract, Policy};
use netprim::{HeaderSpace, HeaderTuple, PortRange, Protocol};
use obskit::{Histogram, Observer, Registry};
use smtkit::{BoolId, Session, SessionStats, SmtResult};

/// One direction of behavioral change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeDirection {
    /// Traffic the old policy permitted and the new one denies.
    NewlyDenied,
    /// Traffic the old policy denied and the new one permits.
    NewlyPermitted,
}

/// The semantic difference between two policies.
#[derive(Debug, Clone, Default)]
pub struct PolicyDiff {
    /// A packet permitted before and denied now, if any exists.
    pub newly_denied: Option<HeaderTuple>,
    /// A packet denied before and permitted now, if any exists.
    pub newly_permitted: Option<HeaderTuple>,
}

impl PolicyDiff {
    /// Are the two policies semantically identical?
    pub fn is_equivalent(&self) -> bool {
        self.newly_denied.is_none() && self.newly_permitted.is_none()
    }
}

/// SMT-based semantic diff. `old` and `new` may use different
/// conventions (e.g. comparing a first-applicable rewrite of a
/// deny-overrides policy).
pub fn semantic_diff(old: &Policy, new: &Policy) -> PolicyDiff {
    PolicyDiff {
        newly_denied: direction_witness(old, new, ChangeDirection::NewlyDenied),
        newly_permitted: direction_witness(old, new, ChangeDirection::NewlyPermitted),
    }
}

/// Find a packet changed in the given direction, if one exists.
///
/// Implemented by reusing the contract checker: "`old` permits x" is
/// the contract `Permit(everything old permits)`, so a witness for
/// `P_old ∧ ¬P_new` is exactly a violation of each permitted region of
/// `old` checked against `new`. To stay exact without enumerating
/// regions through the SMT layer, the interval engine first computes
/// the changed boxes, and the SMT engine confirms the witness — the two
/// must agree (differential tested).
pub fn direction_witness(
    old: &Policy,
    new: &Policy,
    direction: ChangeDirection,
) -> Option<HeaderTuple> {
    let (grant, check) = match direction {
        ChangeDirection::NewlyDenied => (old, new),
        ChangeDirection::NewlyPermitted => (new, old),
    };
    // Regions `grant` permits, via exact box algebra.
    let regions = permitted_regions(grant);
    let interval = IntervalEngine::new();
    for region in regions {
        // Does `check` deny any of it?
        let contract = Contract::new("diff", region, Action::Permit);
        let outcome = interval.check(check, &contract);
        if let Some(w) = outcome.witness {
            debug_assert!(!check.allows(&w));
            debug_assert!(grant.allows(&w));
            return Some(w);
        }
    }
    None
}

/// Decompose the permit set of a policy into disjoint header-space
/// boxes (exact; exponential only in pathological rule structures).
fn permitted_regions(policy: &Policy) -> Vec<HeaderSpace> {
    // Work over the interval engine's semantics by evaluating the
    // policy region by region: start from each permit rule's filter,
    // subtract the filters that can override it.
    let mut out = Vec::new();
    match policy.convention {
        crate::model::Convention::FirstApplicable => {
            for (i, r) in policy.rules().iter().enumerate() {
                if r.action != Action::Permit {
                    continue;
                }
                // r's filter minus all earlier rules' filters.
                let mut parts = vec![r.filter];
                for earlier in &policy.rules()[..i] {
                    parts = subtract_spaces(parts, &earlier.filter);
                    if parts.is_empty() {
                        break;
                    }
                }
                out.extend(parts);
            }
        }
        crate::model::Convention::DenyOverrides => {
            for r in policy.rules() {
                if r.action != Action::Permit {
                    continue;
                }
                let mut parts = vec![r.filter];
                for deny in policy.rules().iter().filter(|r| r.action == Action::Deny) {
                    parts = subtract_spaces(parts, &deny.filter);
                    if parts.is_empty() {
                        break;
                    }
                }
                out.extend(parts);
            }
        }
    }
    out
}

/// Subtract one header space from a list of disjoint spaces. The
/// protocol dimension is widened to ranges internally (same approach as
/// the interval engine); residual protocol ranges are re-expressed as
/// per-protocol singletons only when narrow.
fn subtract_spaces(spaces: Vec<HeaderSpace>, cut: &HeaderSpace) -> Vec<HeaderSpace> {
    let mut out = Vec::new();
    for s in spaces {
        out.extend(subtract_one(&s, cut));
    }
    out
}

fn proto_bounds(p: Protocol) -> (u8, u8) {
    match p.number() {
        None => (0, 255),
        Some(n) => (n, n),
    }
}

fn subtract_one(s: &HeaderSpace, cut: &HeaderSpace) -> Vec<HeaderSpace> {
    // Intersection test first.
    let Some(_) = s.intersect(cut) else {
        return vec![*s];
    };
    let mut out = Vec::new();
    let mut rest = *s;

    // src ip
    for part in rest.src.subtract(cut.src) {
        out.push(HeaderSpace { src: part, ..rest });
    }
    rest.src = match rest.src.intersect(cut.src) {
        Some(i) => i,
        None => return out,
    };
    // src ports
    {
        let (lo, hi) = (rest.src_ports.start(), rest.src_ports.end());
        let (clo, chi) = (cut.src_ports.start(), cut.src_ports.end());
        if lo < clo {
            out.push(HeaderSpace {
                src_ports: PortRange::new(lo, clo - 1).unwrap(),
                ..rest
            });
        }
        if chi < hi {
            out.push(HeaderSpace {
                src_ports: PortRange::new(chi + 1, hi).unwrap(),
                ..rest
            });
        }
        rest.src_ports = match rest.src_ports.intersect(cut.src_ports) {
            Some(i) => i,
            None => return out,
        };
    }
    // dst ip
    for part in rest.dst.subtract(cut.dst) {
        out.push(HeaderSpace { dst: part, ..rest });
    }
    rest.dst = match rest.dst.intersect(cut.dst) {
        Some(i) => i,
        None => return out,
    };
    // dst ports
    {
        let (lo, hi) = (rest.dst_ports.start(), rest.dst_ports.end());
        let (clo, chi) = (cut.dst_ports.start(), cut.dst_ports.end());
        if lo < clo {
            out.push(HeaderSpace {
                dst_ports: PortRange::new(lo, clo - 1).unwrap(),
                ..rest
            });
        }
        if chi < hi {
            out.push(HeaderSpace {
                dst_ports: PortRange::new(chi + 1, hi).unwrap(),
                ..rest
            });
        }
        rest.dst_ports = match rest.dst_ports.intersect(cut.dst_ports) {
            Some(i) => i,
            None => return out,
        };
    }
    // protocol
    {
        let (lo, hi) = proto_bounds(rest.protocol);
        let (clo, chi) = proto_bounds(cut.protocol);
        // Residual protocol sub-ranges are emitted per value; in
        // practice rules use Any or a single protocol, so residuals
        // are empty or tiny unless someone diffs exotic policies.
        if clo > lo || chi < hi {
            for v in lo..=hi {
                if v < clo || v > chi {
                    out.push(HeaderSpace {
                        protocol: Protocol::Number(v).canonical(),
                        ..rest
                    });
                }
            }
        }
    }
    out
}

/// SMT policy differ: both policies encoded once over one shared
/// packet tuple in a single incremental session. Each direction of
/// change is then one assumption-based satisfiability query, and any
/// number of follow-up queries (restricted diffs, equivalence
/// re-checks after edits to the question) reuse the same bit-blasted
/// encoding and learned clauses.
pub struct SmtDiff {
    session: Session,
    vars: PacketVars,
    old_expr: BoolId,
    new_expr: BoolId,
    latency: Option<Histogram>,
}

impl SmtDiff {
    /// Encode the policy pair for diffing.
    pub fn new(old: &Policy, new: &Policy) -> SmtDiff {
        let mut session = Session::new();
        let a = session.arena_mut();
        let vars = PacketVars::new(a);
        let old_expr = policy_expr(old, &vars, a);
        let new_expr = policy_expr(new, &vars, a);
        SmtDiff {
            session,
            vars,
            old_expr,
            new_expr,
            latency: None,
        }
    }

    /// Record each direction query's latency into `registry`'s
    /// `secguru_diff_latency_ns` histogram.
    #[must_use]
    pub fn metrics(mut self, registry: &Registry) -> Self {
        self.latency = Some(registry.histogram(
            "secguru_diff_latency_ns",
            "per-direction semantic-diff query latency in nanoseconds",
            &[],
        ));
        self
    }

    /// A packet changed in the given direction, if any exists. Exact:
    /// `None` is a proof that no such packet exists.
    pub fn witness(&mut self, direction: ChangeDirection) -> Option<HeaderTuple> {
        let _span = self.latency.as_ref().map(|h| h.start_timer());
        let query = {
            let (o, n) = (self.old_expr, self.new_expr);
            let a = self.session.arena_mut();
            match direction {
                // P_old ∧ ¬P_new
                ChangeDirection::NewlyDenied => {
                    let nn = a.not(n);
                    a.and(o, nn)
                }
                // ¬P_old ∧ P_new
                ChangeDirection::NewlyPermitted => {
                    let no = a.not(o);
                    a.and(no, n)
                }
            }
        };
        match self.session.check_assuming(&[query]) {
            SmtResult::Unsat => None,
            SmtResult::Sat => Some(self.vars.witness(&self.session.model())),
        }
    }

    /// Are the two policies semantically identical? Two queries against
    /// the shared encoding.
    pub fn is_equivalent(&mut self) -> bool {
        self.witness(ChangeDirection::NewlyDenied).is_none()
            && self.witness(ChangeDirection::NewlyPermitted).is_none()
    }

    /// The full diff (both directions) as one [`PolicyDiff`].
    pub fn diff(&mut self) -> PolicyDiff {
        PolicyDiff {
            newly_denied: self.witness(ChangeDirection::NewlyDenied),
            newly_permitted: self.witness(ChangeDirection::NewlyPermitted),
        }
    }

    /// Solver counters accumulated across the queries so far.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }
}

impl Observer for SmtDiff {
    fn observe(&self, registry: &Registry) {
        self.stats().observe_into(registry, "secguru_diff_solver", &[]);
    }
}

/// Cross-check the diff verdict with the SMT engine: decide the
/// "policies are equivalent" obligation exactly with [`SmtDiff`] and
/// confirm it agrees with the interval result. Used by tests and
/// available for paranoid callers.
pub fn smt_confirms_equivalence(old: &Policy, new: &Policy) -> bool {
    let smt_equivalent = SmtDiff::new(old, new).is_equivalent();
    let interval_equivalent = semantic_diff(old, new).is_equivalent();
    debug_assert_eq!(
        smt_equivalent, interval_equivalent,
        "SMT and interval diff must agree"
    );
    smt_equivalent && interval_equivalent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Convention, Rule};
    use crate::parser::{figure8_acl, parse_acl};

    fn allows(p: &Policy, w: &HeaderTuple) -> bool {
        p.allows(w)
    }

    #[test]
    fn identical_policies_are_equivalent() {
        let p = figure8_acl();
        let d = semantic_diff(&p, &p);
        assert!(d.is_equivalent());
        assert!(smt_confirms_equivalence(&p, &p));
    }

    #[test]
    fn rule_reorder_without_overlap_is_equivalent() {
        let a = parse_acl(
            "a",
            "
            deny tcp any any eq 445
            deny udp any any eq 445
            permit ip any 104.208.32.0/20
            ",
        )
        .unwrap();
        let b = parse_acl(
            "b",
            "
            deny udp any any eq 445
            deny tcp any any eq 445
            permit ip any 104.208.32.0/20
            ",
        )
        .unwrap();
        assert!(semantic_diff(&a, &b).is_equivalent());
    }

    #[test]
    fn tightening_detected_as_newly_denied() {
        let old = figure8_acl();
        // Add one more standard block: port 135.
        let new = old.with_rules([Rule {
            name: "deny-135".into(),
            priority: 0, // evaluated first
            filter: HeaderSpace {
                dst_ports: PortRange::single(135),
                protocol: Protocol::Tcp,
                ..HeaderSpace::ALL
            },
            action: Action::Deny,
        }]);
        let d = semantic_diff(&old, &new);
        let w = d.newly_denied.expect("tightening must be detected");
        assert_eq!(w.dst_port, 135);
        assert!(allows(&old, &w) && !allows(&new, &w));
        assert!(d.newly_permitted.is_none(), "nothing was opened");
    }

    #[test]
    fn loosening_detected_as_newly_permitted() {
        let old = figure8_acl();
        let new = old.with_rules([Rule {
            name: "open-9-9-9".into(),
            priority: 10_000, // evaluated last, before default deny
            filter: HeaderSpace::to_dst("9.9.9.0/24".parse().unwrap()),
            action: Action::Permit,
        }]);
        let d = semantic_diff(&old, &new);
        let w = d.newly_permitted.expect("loosening must be detected");
        assert!(!allows(&old, &w) && allows(&new, &w));
        assert!(d.newly_denied.is_none());
    }

    #[test]
    fn refactoring_step_is_behavior_preserving() {
        // Deleting a redundant rule (shadowed by an earlier identical
        // deny) must be a semantic no-op — the §3.3 "unnecessary or
        // redundant" deletions.
        let old = parse_acl(
            "a",
            "
            deny ip 10.0.0.0/8 any
            deny ip 10.2.0.0/16 any
            permit ip any any
            ",
        )
        .unwrap();
        let new = old.without_rule("line3"); // the shadowed /16 deny
        assert!(semantic_diff(&old, &new).is_equivalent());
        assert!(smt_confirms_equivalence(&old, &new));
    }

    #[test]
    fn cross_convention_equivalence() {
        // deny-overrides {permit all, deny 10/8} ==
        // first-applicable {deny 10/8, permit all}.
        let fa = parse_acl(
            "fa",
            "
            deny ip 10.0.0.0/8 any
            permit ip any any
            ",
        )
        .unwrap();
        let rules = vec![
            Rule {
                name: "permit-all".into(),
                priority: 1,
                filter: HeaderSpace::ALL,
                action: Action::Permit,
            },
            Rule {
                name: "deny-10".into(),
                priority: 2,
                filter: HeaderSpace::from_src("10.0.0.0/8".parse().unwrap()),
                action: Action::Deny,
            },
        ];
        let dov = Policy::new("do", Convention::DenyOverrides, rules);
        assert!(semantic_diff(&fa, &dov).is_equivalent());
    }

    #[test]
    fn smt_diff_agrees_with_interval_diff() {
        let old = figure8_acl();
        let new = old.with_rules([Rule {
            name: "deny-135".into(),
            priority: 0,
            filter: HeaderSpace {
                dst_ports: PortRange::single(135),
                protocol: Protocol::Tcp,
                ..HeaderSpace::ALL
            },
            action: Action::Deny,
        }]);
        let mut sd = SmtDiff::new(&old, &new);
        let d = sd.diff();
        let w = d.newly_denied.expect("tightening must be detected");
        assert_eq!(w.dst_port, 135);
        assert!(allows(&old, &w) && !allows(&new, &w));
        assert!(d.newly_permitted.is_none());
        // Both directions ran against one shared encoding: two queries,
        // with the second reusing the first's bit-blasted subterms.
        let st = sd.stats();
        assert_eq!(st.queries, 2);
        assert!(st.blast_cache_hits > 0, "{st:?}");
    }

    #[test]
    fn smt_diff_proves_equivalence_exactly() {
        let p = figure8_acl();
        assert!(SmtDiff::new(&p, &p).is_equivalent());
        let reordered = parse_acl(
            "r",
            "
            deny udp any any eq 445
            deny tcp any any eq 445
            permit ip any 104.208.32.0/20
            ",
        )
        .unwrap();
        let original = parse_acl(
            "o",
            "
            deny tcp any any eq 445
            deny udp any any eq 445
            permit ip any 104.208.32.0/20
            ",
        )
        .unwrap();
        assert!(SmtDiff::new(&original, &reordered).is_equivalent());
        assert!(!SmtDiff::new(&original, &p).is_equivalent());
    }

    #[test]
    fn diff_respects_protocol_dimension() {
        let old = parse_acl("a", "permit ip any any").unwrap();
        let new = parse_acl(
            "b",
            "
            deny 47 any any
            permit ip any any
            ",
        )
        .unwrap();
        let d = semantic_diff(&old, &new);
        let w = d.newly_denied.unwrap();
        assert_eq!(w.protocol, 47);
        assert!(d.newly_permitted.is_none());
    }
}
