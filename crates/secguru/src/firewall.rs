//! Validating distributed firewalls (§3.5).
//!
//! "Azure enforces a common set of restrictions for every virtual
//! machine… specified using a configuration file and automatically
//! derived from a template. A problem we encountered in the past is
//! that bugs in the automation or policy changes have resulted in
//! restrictions being omitted in deployments." The firewall policies
//! use **deny-overrides** semantics; SecGuru checking "gates
//! deployments of policies to only those that pass validation".

use crate::engine::{CheckOutcome, SecGuru};
use crate::model::{Action, Contract, Convention, Policy, Rule};
use netprim::{HeaderSpace, IpRange, PortRange, Prefix, Protocol};

/// Template inputs: the address layout of the host environment.
#[derive(Debug, Clone)]
pub struct FirewallTemplate {
    /// The guest VM's own addresses.
    pub vm_range: Prefix,
    /// Infrastructure services that guests must never reach.
    pub infra_ranges: Vec<Prefix>,
    /// Other tenants' ranges the VM must be isolated from.
    pub tenant_ranges: Vec<Prefix>,
    /// Public ranges the VM may reach.
    pub allowed_outbound: Vec<Prefix>,
}

impl FirewallTemplate {
    /// Derive the concrete per-VM policy from the template
    /// (deny-overrides: broad permits + carve-out denies).
    pub fn render(&self) -> Policy {
        let mut rules = Vec::new();
        let mut prio = 0;
        for dst in &self.allowed_outbound {
            prio += 1;
            rules.push(Rule {
                name: format!("permit-outbound-{dst}"),
                priority: prio,
                filter: HeaderSpace {
                    src: self.vm_range.range(),
                    ..HeaderSpace::to_dst(*dst)
                },
                action: Action::Permit,
            });
        }
        for dst in &self.infra_ranges {
            prio += 1;
            rules.push(Rule {
                name: format!("deny-infra-{dst}"),
                priority: prio,
                filter: HeaderSpace::to_dst(*dst),
                action: Action::Deny,
            });
        }
        for dst in &self.tenant_ranges {
            prio += 1;
            rules.push(Rule {
                name: format!("deny-tenant-{dst}"),
                priority: prio,
                filter: HeaderSpace::to_dst(*dst),
                action: Action::Deny,
            });
        }
        Policy::new("vm-firewall", Convention::DenyOverrides, rules)
    }

    /// The security contracts every rendered policy must satisfy
    /// ("we extracted a set of contracts that specify our security
    /// policy for the common restrictions").
    pub fn security_contracts(&self) -> Vec<Contract> {
        let mut cs = Vec::new();
        for dst in &self.infra_ranges {
            cs.push(Contract::new(
                format!("no-guest-to-infra-{dst}"),
                HeaderSpace {
                    src: self.vm_range.range(),
                    ..HeaderSpace::to_dst(*dst)
                },
                Action::Deny,
            ));
        }
        for dst in &self.tenant_ranges {
            cs.push(Contract::new(
                format!("tenant-isolation-{dst}"),
                HeaderSpace {
                    src: self.vm_range.range(),
                    ..HeaderSpace::to_dst(*dst)
                },
                Action::Deny,
            ));
        }
        for dst in &self.allowed_outbound {
            // Outbound reachability minus the carved-out restrictions;
            // expressed on a representative sub-range outside any deny.
            if let Some(free) = self.free_subrange(*dst) {
                cs.push(Contract::new(
                    format!("outbound-open-{dst}"),
                    HeaderSpace {
                        src: self.vm_range.range(),
                        src_ports: PortRange::ALL,
                        dst: free,
                        dst_ports: PortRange::ALL,
                        protocol: Protocol::Any,
                    },
                    Action::Permit,
                ));
            }
        }
        cs
    }

    /// A sub-range of `dst` that intersects no deny range, if any.
    fn free_subrange(&self, dst: Prefix) -> Option<IpRange> {
        let mut parts = vec![dst.range()];
        for d in self.infra_ranges.iter().chain(&self.tenant_ranges) {
            parts = parts
                .into_iter()
                .flat_map(|r| r.subtract(d.range()))
                .collect();
        }
        parts.into_iter().next()
    }
}

/// Deployment decision for a rendered policy.
#[derive(Debug)]
pub enum DeploymentDecision {
    /// Policy deployed.
    Deployed,
    /// Deployment blocked; the failures list omitted restrictions.
    Blocked(Vec<CheckOutcome>),
}

/// The deployment gate of §3.5: only policies passing every security
/// contract reach hosts.
pub fn deployment_gate(policy: &Policy, contracts: &[Contract]) -> DeploymentDecision {
    let mut sg = SecGuru::new(policy.clone());
    let failures = sg.check_all(contracts);
    if failures.is_empty() {
        DeploymentDecision::Deployed
    } else {
        DeploymentDecision::Blocked(failures)
    }
}

/// A standard template for tests/examples: a VM in 10.44.0.0/16, infra
/// at 168.63.129.0/24 and 169.254.169.0/24, one peer tenant range, and
/// the public Internet (modeled as 0.0.0.0/1 and 128.0.0.0/1 coarse
/// permits).
pub fn standard_template() -> FirewallTemplate {
    FirewallTemplate {
        vm_range: "10.44.0.0/16".parse().unwrap(),
        infra_ranges: vec![
            "168.63.129.0/24".parse().unwrap(),
            "169.254.169.0/24".parse().unwrap(),
        ],
        tenant_ranges: vec!["10.45.0.0/16".parse().unwrap()],
        allowed_outbound: vec![
            "0.0.0.0/1".parse().unwrap(),
            "128.0.0.0/1".parse().unwrap(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netprim::{HeaderTuple, Ipv4};

    #[test]
    fn rendered_template_passes_gate() {
        let t = standard_template();
        let policy = t.render();
        match deployment_gate(&policy, &t.security_contracts()) {
            DeploymentDecision::Deployed => {}
            DeploymentDecision::Blocked(f) => panic!("{f:?}"),
        }
    }

    #[test]
    fn rendered_policy_reference_semantics() {
        let t = standard_template();
        let p = t.render();
        let from_vm = |dst: [u8; 4]| HeaderTuple {
            src_ip: Ipv4::new(10, 44, 1, 1),
            src_port: 5000,
            dst_ip: Ipv4::from(dst),
            dst_port: 443,
            protocol: 6,
        };
        assert!(p.allows(&from_vm([8, 8, 8, 8])), "internet open");
        assert!(!p.allows(&from_vm([168, 63, 129, 16])), "infra blocked");
        assert!(!p.allows(&from_vm([169, 254, 169, 254])), "wireserver blocked");
        assert!(!p.allows(&from_vm([10, 45, 3, 3])), "tenant isolated");
    }

    #[test]
    fn omitted_restriction_is_caught() {
        // The §3.5 bug: automation drops one deny rule.
        let t = standard_template();
        let broken = t.render().without_rule("deny-infra-168.63.129.0/24");
        match deployment_gate(&broken, &t.security_contracts()) {
            DeploymentDecision::Blocked(failures) => {
                assert!(failures
                    .iter()
                    .any(|f| f.contract == "no-guest-to-infra-168.63.129.0/24"));
                // Witness is a concrete guest-to-infra packet.
                let w = failures[0].witness.unwrap();
                assert!(t.vm_range.contains(w.src_ip));
            }
            DeploymentDecision::Deployed => panic!("gate must block"),
        }
    }

    #[test]
    fn every_single_omission_is_caught() {
        // Mutation coverage: drop each deny rule in turn; the gate must
        // block every mutant.
        let t = standard_template();
        let policy = t.render();
        let contracts = t.security_contracts();
        let deny_rules: Vec<String> = policy
            .rules()
            .iter()
            .filter(|r| r.action == Action::Deny)
            .map(|r| r.name.clone())
            .collect();
        assert!(!deny_rules.is_empty());
        for name in deny_rules {
            let mutant = policy.without_rule(&name);
            assert!(
                matches!(
                    deployment_gate(&mutant, &contracts),
                    DeploymentDecision::Blocked(_)
                ),
                "dropping {name} must be caught"
            );
        }
    }

    #[test]
    fn dropping_a_permit_is_also_caught() {
        let t = standard_template();
        let policy = t.render();
        let contracts = t.security_contracts();
        let mutant = policy.without_rule("permit-outbound-0.0.0.0/1");
        assert!(matches!(
            deployment_gate(&mutant, &contracts),
            DeploymentDecision::Blocked(_)
        ));
    }
}
