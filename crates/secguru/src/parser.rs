//! Parsers for the two policy syntaxes of §3.1.
//!
//! * [`parse_acl`] — Cisco-IOS-style ACLs, the exact shape of the
//!   paper's Figure 8: `permit|deny <proto> <src> [eq N] <dst> [eq N]`
//!   with `remark` comment lines and numeric protocols (`deny 53 any
//!   any`).
//! * [`parse_nsg`] — network security groups as the tabular records of
//!   Figure 9: one rule per line,
//!   `priority; name; source; srcPorts; destination; dstPorts;
//!   protocol; access`.

use crate::model::{Action, Convention, Policy, Rule};
use netprim::{HeaderSpace, IpRange, ParseError, PortRange, Prefix, Protocol};

fn parse_addr_spec(tok: &str) -> Result<IpRange, ParseError> {
    if tok.eq_ignore_ascii_case("any") || tok == "*" {
        return Ok(IpRange::ALL);
    }
    if tok.contains('/') {
        let p: Prefix = tok.parse()?;
        return Ok(p.range());
    }
    // Bare host address.
    let ip: netprim::Ipv4 = tok.parse()?;
    Ok(IpRange::single(ip))
}

/// Addresses in classic IOS form: `any`, `host A.B.C.D`,
/// `A.B.C.D W.W.W.W` (address + wildcard mask), `A.B.C.D/len`, or a
/// bare host address. Consumes one or two tokens.
fn parse_ios_addr(
    tokens: &mut std::iter::Peekable<std::str::SplitWhitespace>,
    line: &str,
) -> Result<IpRange, ParseError> {
    let tok = tokens
        .next()
        .ok_or_else(|| ParseError::new("acl rule", line, "missing address"))?;
    if tok.eq_ignore_ascii_case("host") {
        let ip_tok = tokens
            .next()
            .ok_or_else(|| ParseError::new("acl rule", line, "host needs an address"))?;
        let ip: netprim::Ipv4 = ip_tok.parse()?;
        return Ok(IpRange::single(ip));
    }
    if tok.eq_ignore_ascii_case("any") || tok == "*" || tok.contains('/') {
        return parse_addr_spec(tok);
    }
    // Could be `addr wildcard` (next token looks like a dotted quad
    // that isn't a keyword) or a bare host.
    let ip: netprim::Ipv4 = tok.parse()?;
    let looks_like_mask = tokens
        .peek()
        .is_some_and(|t| t.parse::<netprim::Ipv4>().is_ok());
    if looks_like_mask {
        let mask_tok = tokens.next().expect("peeked");
        let wildcard: netprim::Ipv4 = mask_tok.parse()?;
        // A contiguous wildcard mask (low bits set) denotes a prefix:
        // e.g. 0.0.0.255 == /24. Non-contiguous wildcards are not
        // representable as ranges and are rejected, as most analysis
        // tools do.
        let w = wildcard.0;
        if w != 0 && (w.wrapping_add(1) & w) != 0 {
            return Err(ParseError::new(
                "acl rule",
                line,
                "non-contiguous wildcard masks are not supported",
            ));
        }
        let len = w.leading_zeros() as u8;
        let p = Prefix::containing(ip, len).expect("len <= 32");
        return Ok(p.range());
    }
    Ok(IpRange::single(ip))
}

fn parse_port_spec(tokens: &mut std::iter::Peekable<std::str::SplitWhitespace>) -> Result<PortRange, ParseError> {
    match tokens.peek().copied() {
        Some("gt") => {
            tokens.next();
            let p = tokens
                .next()
                .ok_or_else(|| ParseError::new("acl rule", "", "gt needs a port"))?;
            let port: u16 = p
                .parse()
                .map_err(|_| ParseError::new("acl rule", p, "bad port number"))?;
            if port == u16::MAX {
                return Err(ParseError::new("acl rule", p, "gt 65535 matches nothing"));
            }
            PortRange::new(port + 1, u16::MAX)
        }
        Some("lt") => {
            tokens.next();
            let p = tokens
                .next()
                .ok_or_else(|| ParseError::new("acl rule", "", "lt needs a port"))?;
            let port: u16 = p
                .parse()
                .map_err(|_| ParseError::new("acl rule", p, "bad port number"))?;
            if port == 0 {
                return Err(ParseError::new("acl rule", p, "lt 0 matches nothing"));
            }
            PortRange::new(0, port - 1)
        }
        Some("eq") => {
            tokens.next();
            let p = tokens
                .next()
                .ok_or_else(|| ParseError::new("acl rule", "", "eq needs a port"))?;
            let port: u16 = p
                .parse()
                .map_err(|_| ParseError::new("acl rule", p, "bad port number"))?;
            Ok(PortRange::single(port))
        }
        Some("range") => {
            tokens.next();
            let lo = tokens
                .next()
                .ok_or_else(|| ParseError::new("acl rule", "", "range needs two ports"))?;
            let hi = tokens
                .next()
                .ok_or_else(|| ParseError::new("acl rule", "", "range needs two ports"))?;
            let lo: u16 = lo
                .parse()
                .map_err(|_| ParseError::new("acl rule", lo, "bad port number"))?;
            let hi: u16 = hi
                .parse()
                .map_err(|_| ParseError::new("acl rule", hi, "bad port number"))?;
            PortRange::new(lo, hi)
        }
        _ => Ok(PortRange::ALL),
    }
}

/// Parse a Cisco-IOS-style ACL into a first-applicable [`Policy`].
///
/// Grammar per line (whitespace-separated):
///
/// ```text
/// remark <anything>                      -- ignored
/// permit|deny <proto> <src> [PORTS] <dst> [PORTS]
/// PORTS := eq N | range A B | gt N | lt N
/// ```
///
/// `<proto>` is `ip|tcp|udp|icmp|<number>`; `<src>`/`<dst>` are `any`,
/// `host A.B.C.D`, `A.B.C.D`, `A.B.C.D/len`, or the classic IOS
/// `A.B.C.D W.W.W.W` address + contiguous wildcard-mask pair.
pub fn parse_acl(name: &str, text: &str) -> Result<Policy, ParseError> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace().peekable();
        let first = tokens.next().expect("non-empty line has a token");
        if first.eq_ignore_ascii_case("remark") {
            continue;
        }
        let action = match first.to_ascii_lowercase().as_str() {
            "permit" => Action::Permit,
            "deny" => Action::Deny,
            other => {
                return Err(ParseError::new(
                    "acl rule",
                    line,
                    format!("expected permit/deny/remark, found {other:?}"),
                ))
            }
        };
        let proto_tok = tokens
            .next()
            .ok_or_else(|| ParseError::new("acl rule", line, "missing protocol"))?;
        let protocol: Protocol = proto_tok.parse()?;
        let src = parse_ios_addr(&mut tokens, line)?;
        let src_ports = parse_port_spec(&mut tokens)?;
        let dst = parse_ios_addr(&mut tokens, line)?;
        let dst_ports = parse_port_spec(&mut tokens)?;
        if tokens.next().is_some() {
            return Err(ParseError::new("acl rule", line, "trailing tokens"));
        }
        rules.push(Rule {
            name: format!("line{}", lineno + 1),
            priority: (lineno + 1) as u32,
            filter: HeaderSpace {
                src,
                src_ports,
                dst,
                dst_ports,
                protocol,
            },
            action,
        });
    }
    Ok(Policy::new(name, Convention::FirstApplicable, rules))
}

/// Parse an NSG from tabular records (one per line):
///
/// ```text
/// priority; name; source; srcPorts; destination; dstPorts; protocol; access
/// ```
///
/// Addresses are `Any`, a prefix, or a host; ports are `Any`, `N`, or
/// `N-M`; access is `Allow` or `Deny` (Figure 9's vocabulary).
pub fn parse_nsg(name: &str, text: &str) -> Result<Policy, ParseError> {
    let mut rules = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(';').map(str::trim).collect();
        if fields.len() != 8 {
            return Err(ParseError::new(
                "nsg rule",
                line,
                format!("expected 8 ';'-separated fields, found {}", fields.len()),
            ));
        }
        let priority: u32 = fields[0]
            .parse()
            .map_err(|_| ParseError::new("nsg rule", line, "bad priority"))?;
        let rule_name = fields[1].to_string();
        let src = parse_addr_spec(fields[2])?;
        let src_ports = parse_nsg_ports(fields[3])?;
        let dst = parse_addr_spec(fields[4])?;
        let dst_ports = parse_nsg_ports(fields[5])?;
        let protocol: Protocol = fields[6].parse()?;
        let action = match fields[7].to_ascii_lowercase().as_str() {
            "allow" | "permit" => Action::Permit,
            "deny" => Action::Deny,
            other => {
                return Err(ParseError::new(
                    "nsg rule",
                    line,
                    format!("bad access value {other:?}"),
                ))
            }
        };
        rules.push(Rule {
            name: rule_name,
            priority,
            filter: HeaderSpace {
                src,
                src_ports,
                dst,
                dst_ports,
                protocol,
            },
            action,
        });
    }
    Ok(Policy::new(name, Convention::FirstApplicable, rules))
}

fn parse_nsg_ports(tok: &str) -> Result<PortRange, ParseError> {
    if tok.eq_ignore_ascii_case("any") || tok == "*" {
        return Ok(PortRange::ALL);
    }
    if let Some((lo, hi)) = tok.split_once('-') {
        let lo: u16 = lo
            .trim()
            .parse()
            .map_err(|_| ParseError::new("nsg ports", tok, "bad low port"))?;
        let hi: u16 = hi
            .trim()
            .parse()
            .map_err(|_| ParseError::new("nsg ports", tok, "bad high port"))?;
        return PortRange::new(lo, hi);
    }
    let p: u16 = tok
        .parse()
        .map_err(|_| ParseError::new("nsg ports", tok, "bad port"))?;
    Ok(PortRange::single(p))
}

/// The paper's Figure 8 edge ACL, verbatim (modulo remark text), used
/// by tests, examples, and benchmarks.
pub fn figure8_acl() -> Policy {
    parse_acl(
        "edge-acl",
        r#"
        remark Isolating private addresses
        deny   ip 0.0.0.0/32 any
        deny   ip 10.0.0.0/8 any
        deny   ip 172.16.0.0/12 any
        remark Anti spoofing ACLs
        deny   ip 104.208.32.0/20 any
        deny   ip 168.61.144.0/20 any
        remark permits for IPs without port and protocol blocks
        permit ip any 104.208.32.0/24
        remark standard port and protocol blocks
        deny   tcp any any eq 445
        deny   udp any any eq 445
        deny   tcp any any eq 593
        deny   udp any any eq 593
        deny   53 any any
        deny   55 any any
        remark permits for IPs with port and protocol blocks
        permit ip any 104.208.32.0/20
        permit ip any 168.61.144.0/20
        "#,
    )
    .expect("figure 8 ACL parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netprim::{HeaderTuple, Ipv4};

    fn h(src: [u8; 4], dst: [u8; 4], dst_port: u16, proto: u8) -> HeaderTuple {
        HeaderTuple {
            src_ip: Ipv4::from(src),
            src_port: 40000,
            dst_ip: Ipv4::from(dst),
            dst_port,
            protocol: proto,
        }
    }

    #[test]
    fn figure8_semantics() {
        let p = figure8_acl();
        assert_eq!(p.len(), 14);
        // §1: private source blocked even toward a permitted dst.
        assert!(!p.allows(&h([10, 1, 1, 1], [104, 208, 32, 10], 80, 6)));
        // §2: anti-spoofing — own ranges as source are blocked.
        assert!(!p.allows(&h([104, 208, 33, 1], [104, 208, 32, 10], 80, 6)));
        // §3: the /24 is permitted for any port, even 445.
        assert!(p.allows(&h([8, 8, 8, 8], [104, 208, 32, 10], 445, 6)));
        // §4: port 445 blocked toward the broader /20.
        assert!(!p.allows(&h([8, 8, 8, 8], [104, 208, 40, 10], 445, 6)));
        // §5: other ports toward the /20 are fine.
        assert!(p.allows(&h([8, 8, 8, 8], [104, 208, 40, 10], 443, 6)));
        assert!(p.allows(&h([8, 8, 8, 8], [168, 61, 150, 1], 22, 6)));
        // protocol 53 blocked everywhere.
        assert!(!p.allows(&h([8, 8, 8, 8], [168, 61, 150, 1], 22, 53)));
        // default deny: unlisted destinations are blocked.
        assert!(!p.allows(&h([8, 8, 8, 8], [9, 9, 9, 9], 443, 6)));
    }

    #[test]
    fn acl_parses_ios_wildcards_and_host() {
        let p = parse_acl(
            "t",
            "
            deny ip 10.0.0.0 0.255.255.255 any
            permit tcp host 8.8.8.8 any eq 443
            permit ip 192.168.4.0 0.0.3.255 any
            ",
        )
        .unwrap();
        let r = &p.rules()[0];
        assert_eq!(r.filter.src, "10.0.0.0/8".parse::<Prefix>().unwrap().range());
        let r = &p.rules()[1];
        assert_eq!(r.filter.src, IpRange::single(Ipv4::new(8, 8, 8, 8)));
        assert_eq!(r.filter.dst_ports, PortRange::single(443));
        let r = &p.rules()[2];
        assert_eq!(
            r.filter.src,
            "192.168.4.0/22".parse::<Prefix>().unwrap().range()
        );
    }

    #[test]
    fn acl_rejects_noncontiguous_wildcard() {
        assert!(parse_acl("t", "deny ip 10.0.0.0 0.255.0.255 any").is_err());
    }

    #[test]
    fn acl_parses_gt_lt_ports() {
        let p = parse_acl(
            "t",
            "
            permit tcp any gt 1023 any lt 1024
            ",
        )
        .unwrap();
        let r = &p.rules()[0];
        assert_eq!(r.filter.src_ports, PortRange::new(1024, 65535).unwrap());
        assert_eq!(r.filter.dst_ports, PortRange::new(0, 1023).unwrap());
        assert!(parse_acl("t", "permit tcp any gt 65535 any").is_err());
        assert!(parse_acl("t", "permit tcp any lt 0 any").is_err());
    }

    #[test]
    fn acl_parses_ranges_and_hosts() {
        let p = parse_acl(
            "t",
            "permit tcp 1.2.3.4 range 1000 2000 5.0.0.0/8 eq 443",
        )
        .unwrap();
        assert_eq!(p.len(), 1);
        let r = &p.rules()[0];
        assert_eq!(r.filter.src, IpRange::single(Ipv4::new(1, 2, 3, 4)));
        assert_eq!(r.filter.src_ports, PortRange::new(1000, 2000).unwrap());
        assert_eq!(r.filter.dst_ports, PortRange::single(443));
    }

    #[test]
    fn acl_rejects_malformed_lines() {
        for bad in [
            "frobnicate ip any any",
            "permit ip any",
            "permit tcp any any eq notaport",
            "permit ip 300.0.0.0/8 any",
            "permit ip any any extra",
            "permit bogoproto any any",
        ] {
            assert!(parse_acl("t", bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn acl_skips_comments_and_blanks() {
        let p = parse_acl(
            "t",
            "
            remark a comment
            ! bang comment
            # hash comment

            permit ip any any
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn nsg_parses_figure9_style_rules() {
        let p = parse_nsg(
            "web-nsg",
            "
            # priority; name; src; srcPorts; dst; dstPorts; protocol; access
            100; AllowHttps; Any; Any; 10.1.0.0/16; 443; tcp; Allow
            200; DenyVnetInbound; Any; Any; 10.0.0.0/8; Any; Any; Deny
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        // Priority order: 100 first.
        assert!(p.allows(&h([8, 8, 8, 8], [10, 1, 2, 3], 443, 6)));
        assert!(!p.allows(&h([8, 8, 8, 8], [10, 1, 2, 3], 80, 6)));
        assert!(!p.allows(&h([8, 8, 8, 8], [10, 2, 2, 3], 443, 6)));
    }

    #[test]
    fn nsg_priority_not_line_order() {
        let p = parse_nsg(
            "t",
            "
            200; DenyAll; Any; Any; Any; Any; Any; Deny
            100; AllowDns; Any; Any; Any; 53; udp; Allow
            ",
        )
        .unwrap();
        assert!(p.allows(&h([1, 1, 1, 1], [8, 8, 8, 8], 53, 17)));
        assert!(!p.allows(&h([1, 1, 1, 1], [8, 8, 8, 8], 53, 6)));
    }

    #[test]
    fn nsg_rejects_malformed() {
        for bad in [
            "100; TooFew; Any; Any; Any; Any; tcp",
            "abc; BadPrio; Any; Any; Any; Any; tcp; Allow",
            "100; BadPorts; Any; 10-; Any; Any; tcp; Allow",
            "100; BadAccess; Any; Any; Any; Any; tcp; Maybe",
        ] {
            assert!(parse_nsg("t", bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn nsg_port_ranges() {
        let p = parse_nsg(
            "t",
            "100; AllowEphemeral; Any; 1024-65535; Any; 8000-8080; tcp; Allow",
        )
        .unwrap();
        let r = &p.rules()[0];
        assert_eq!(r.filter.src_ports, PortRange::new(1024, 65535).unwrap());
        assert_eq!(r.filter.dst_ports, PortRange::new(8000, 8080).unwrap());
    }
}
