//! Property tests for the rule-identification helpers that violation
//! reports cite: `Policy::first_match` and `Policy::deciding_rule`
//! must always name a rule consistent with the reference semantics
//! `Policy::allows`, under both rule-combination conventions — a
//! report blaming the wrong rule is as bad as a wrong verdict.

use netprim::{HeaderSpace, HeaderTuple, IpRange, Ipv4, PortRange, Protocol};
use proptest::prelude::*;
use secguru::{Action, Convention, Policy, Rule};

/// A deliberately small universe (16 addresses, 4 ports, 3 protocol
/// numbers) so random rules and random packets actually collide.
fn arb_space() -> impl Strategy<Value = HeaderSpace> {
    (
        (0u32..16, 0u32..16),
        (0u16..4, 0u16..4),
        (0u32..16, 0u32..16),
        (0u16..4, 0u16..4),
        0u8..4,
    )
        .prop_map(|(src, sp, dst, dp, proto)| {
            let ips = |(a, b): (u32, u32)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                IpRange::new(Ipv4(lo), Ipv4(hi)).unwrap()
            };
            let ports = |(a, b): (u16, u16)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                PortRange::new(lo, hi).unwrap()
            };
            HeaderSpace {
                src: ips(src),
                src_ports: ports(sp),
                dst: ips(dst),
                dst_ports: ports(dp),
                protocol: match proto {
                    0 => Protocol::Any,
                    1 => Protocol::Tcp,
                    2 => Protocol::Udp,
                    _ => Protocol::Number(99),
                },
            }
        })
}

fn arb_rules() -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec((arb_space(), any::<bool>(), 0u32..8), 0..8).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (filter, permit, priority))| Rule {
                name: format!("r{i}"),
                priority,
                filter,
                action: if permit { Action::Permit } else { Action::Deny },
            })
            .collect()
    })
}

fn arb_packet() -> impl Strategy<Value = HeaderTuple> {
    (0u32..16, 0u16..4, 0u32..16, 0u16..4, 0u8..4).prop_map(
        |(src_ip, src_port, dst_ip, dst_port, proto)| HeaderTuple {
            src_ip: Ipv4(src_ip),
            src_port,
            dst_ip: Ipv4(dst_ip),
            dst_port,
            protocol: match proto {
                1 => 6,
                2 => 17,
                3 => 99,
                _ => proto,
            },
        },
    )
}

/// The consistency conditions a report helper must satisfy for one
/// packet against one policy.
fn check_consistency(p: &Policy, h: &HeaderTuple) -> Result<(), TestCaseError> {
    let allowed = p.allows(h);
    let deciding = p.deciding_rule(h);
    let first = p.first_match(h);

    // The verdict follows from the deciding rule: permitted iff the
    // deciding rule is a permit (no rule ⇒ default deny under both
    // conventions — §3.1 default deny, §3.2 requires a permit).
    prop_assert_eq!(
        allowed,
        matches!(deciding, Some(r) if r.action == Action::Permit),
        "verdict {} inconsistent with deciding rule {:?} for {}",
        allowed,
        deciding.map(|r| &r.name),
        h
    );

    // Whatever rule a report names must actually match the packet.
    if let Some(r) = deciding {
        prop_assert!(r.matches(h), "deciding rule {} does not match {}", r.name, h);
    }
    if let Some(r) = first {
        prop_assert!(r.matches(h), "first_match {} does not match {}", r.name, h);
        // ... and be the earliest matching rule in evaluation order.
        let earliest = p.rules().iter().find(|c| c.matches(h)).unwrap();
        prop_assert_eq!(&r.name, &earliest.name);
    }
    prop_assert_eq!(first.is_some(), p.rules().iter().any(|r| r.matches(h)));

    match p.convention {
        // Definition 3.1: the first matching rule IS the decision.
        Convention::FirstApplicable => {
            prop_assert_eq!(first.map(|r| &r.name), deciding.map(|r| &r.name));
        }
        // Definition 3.2: a matching deny always wins; a named permit
        // implies no deny matched at all.
        Convention::DenyOverrides => {
            if let Some(r) = deciding {
                if r.action == Action::Permit {
                    prop_assert!(
                        !p.rules().iter().any(|c| c.action == Action::Deny && c.matches(h)),
                        "permit {} named although a deny matches {}",
                        r.name,
                        h
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn report_helpers_consistent_first_applicable(
        rules in arb_rules(),
        packets in proptest::collection::vec(arb_packet(), 1..16),
    ) {
        let p = Policy::new("prop", Convention::FirstApplicable, rules);
        for h in &packets {
            check_consistency(&p, h)?;
        }
    }

    #[test]
    fn report_helpers_consistent_deny_overrides(
        rules in arb_rules(),
        packets in proptest::collection::vec(arb_packet(), 1..16),
    ) {
        let p = Policy::new("prop", Convention::DenyOverrides, rules);
        for h in &packets {
            check_consistency(&p, h)?;
        }
    }

    #[test]
    fn removing_the_deciding_rule_changes_or_preserves_soundly(
        rules in arb_rules(),
        h in arb_packet(),
    ) {
        // A sanity link between the helpers and `without_rule`: after
        // deleting the named deciding rule, that rule can no longer be
        // the decider (names are unique in these generated policies).
        for conv in [Convention::FirstApplicable, Convention::DenyOverrides] {
            let p = Policy::new("prop", conv, rules.clone());
            if let Some(name) = p.deciding_rule(&h).map(|r| r.name.clone()) {
                let pruned = p.without_rule(&name);
                prop_assert!(pruned.deciding_rule(&h).is_none_or(|r| r.name != name));
                check_consistency(&pruned, &h)?;
            }
        }
    }
}
