//! Seeded script generation: a seed plus the fabric size fully
//! determine a fault schedule, so the seed printed by a failing run is
//! the whole reproduction.

use crate::rng::{mix, Rng};
use crate::script::{Action, ChurnKind, DeliveryFault, Script, ScriptEvent};

/// Domain-separation tag for the script-generation RNG stream.
const SCRIPT_STREAM: u64 = 0x5c21_97e0_51a7;

/// Generate the fault schedule for `seed` over a fabric of
/// `device_count` devices.
///
/// The mix is tuned so every fault class appears with useful frequency
/// in a few hundred seeds: roughly 55% pulls (of which ~30% carry a
/// delivery fault and ~1 in 8 is a slow puller whose latency spans
/// many later events, creating reordering), 30% churn (including
/// restore events, so device flaps arise as churn/restore pairs on the
/// same device across seeds), and 15% contract republishes that bump
/// epochs mid-flight.
pub fn script_for_seed(seed: u64, device_count: usize) -> Script {
    let mut rng = Rng::new(mix(seed, SCRIPT_STREAM));
    let devices = device_count as u64;
    let n = rng.range(12, 48);
    let mut t = 0u64;
    let mut events = Vec::with_capacity(n as usize);
    for _ in 0..n {
        t += rng.range(0, 40);
        let action = match rng.below(100) {
            0..=54 => {
                let device = rng.below(devices) as u32;
                let slow = rng.chance(1, 8);
                let latency_ms = if slow {
                    rng.range(80, 400)
                } else {
                    rng.range(1, 30)
                };
                let fault = match rng.below(100) {
                    0..=69 => DeliveryFault::None,
                    70..=78 => DeliveryFault::Drop,
                    79..=86 => DeliveryFault::Duplicate {
                        gap_ms: rng.range(1, 120),
                    },
                    87..=93 => DeliveryFault::CorruptDelta {
                        byte: rng.next_u64() as u32,
                    },
                    _ => DeliveryFault::Stale {
                        age: rng.range(1, 3) as u32,
                    },
                };
                Action::Pull {
                    device,
                    latency_ms,
                    fault,
                }
            }
            55..=84 => {
                let device = rng.below(devices) as u32;
                let kind = match rng.below(3) {
                    0 => ChurnKind::DropRoute {
                        index: rng.next_u64() as u32,
                    },
                    1 => ChurnKind::NarrowEcmp {
                        index: rng.next_u64() as u32,
                    },
                    _ => ChurnKind::Restore,
                };
                Action::Churn { device, kind }
            }
            _ => Action::Republish {
                device: rng.below(devices) as u32,
            },
        };
        events.push(ScriptEvent { at_ms: t, action });
    }
    Script { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(script_for_seed(42, 20), script_for_seed(42, 20));
        assert_ne!(script_for_seed(42, 20), script_for_seed(43, 20));
    }

    #[test]
    fn all_fault_classes_appear_across_seeds() {
        let (mut drop, mut dup, mut corrupt, mut stale, mut churn, mut republish, mut slow) =
            (false, false, false, false, false, false, false);
        for seed in 0..100 {
            for e in &script_for_seed(seed, 20).events {
                match e.action {
                    Action::Pull {
                        latency_ms, fault, ..
                    } => {
                        slow |= latency_ms >= 80;
                        match fault {
                            DeliveryFault::Drop => drop = true,
                            DeliveryFault::Duplicate { .. } => dup = true,
                            DeliveryFault::CorruptDelta { .. } => corrupt = true,
                            DeliveryFault::Stale { .. } => stale = true,
                            DeliveryFault::None => {}
                        }
                    }
                    Action::Churn { .. } => churn = true,
                    Action::Republish { .. } => republish = true,
                }
            }
        }
        assert!(
            drop && dup && corrupt && stale && churn && republish && slow,
            "every fault class must be reachable: drop={drop} dup={dup} corrupt={corrupt} \
             stale={stale} churn={churn} republish={republish} slow={slow}"
        );
    }

    #[test]
    fn timestamps_are_monotone() {
        let s = script_for_seed(7, 20);
        assert!(s.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(s.events.len() >= 12);
    }
}
