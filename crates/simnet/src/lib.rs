//! # simnet — deterministic fault-injection simulation of the live pipeline
//!
//! The paper's live RCDC pipeline (§2.6.1) is a concurrent system fed
//! by an unreliable network: FIB snapshots arrive late, duplicated,
//! stale or corrupted, devices flap mid-sweep, and the contract
//! generator republishes epochs underneath in-flight validations.
//! Thread-based tests can exercise those schedules only by luck.
//! `simnet` removes the luck: a seed generates an explicit event
//! [`script::Script`], a virtual clock and single-threaded scheduler
//! execute it against the *real* pipeline components
//! ([`rcdc::pipeline::FibStore`], [`rcdc::pipeline::VerdictCache`],
//! [`rcdc::pipeline::ContractStore`],
//! [`rcdc::pipeline::validate_notification`],
//! [`rcdc::pipeline::StreamAnalytics`]) with real `FIB1`/`FIBD` wire
//! frames, and convergence invariants are checked at the end.
//!
//! When an invariant breaks, the schedule is minimized with the same
//! ddmin machinery the differential fuzzer uses ([`shrink`]) and the
//! report ends with a replay command — the seed IS the reproduction.
//!
//! ```
//! let failure = simnet::check_seed(1);
//! assert!(failure.is_none(), "{}", failure.unwrap());
//! ```

pub mod gen;
pub mod rng;
pub mod script;
pub mod shrink;
pub mod sim;

use script::Script;
use sim::{run_script_with, Flaws, SimEnv, SimOutcome};
use std::fmt;

/// A minimized, replayable simulation failure.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The seed whose schedule broke an invariant.
    pub seed: u64,
    /// The violation the *minimized* script still triggers.
    pub violation: sim::InvariantViolation,
    /// Events in the original generated script.
    pub original_events: usize,
    /// The 1-minimal failing script.
    pub script: Script,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simnet: seed {} breaks an invariant", self.seed)?;
        writeln!(f, "  {}", self.violation)?;
        writeln!(
            f,
            "  minimized schedule ({} of {} events):",
            self.script.events.len(),
            self.original_events
        )?;
        for e in &self.script.events {
            writeln!(f, "    {e}")?;
        }
        write!(
            f,
            "  replay: cargo run --release -p simnet -- --seed {} --count 1",
            self.seed
        )
    }
}

/// Run one seed end to end: generate its schedule, execute it, and on
/// an invariant violation shrink the schedule to a 1-minimal failing
/// script. `None` means the seed passed.
pub fn check_seed(seed: u64) -> Option<SimFailure> {
    check_seed_with(&SimEnv::figure3(), seed, Flaws::default())
}

/// [`check_seed`] against a prebuilt environment (cheaper for seed
/// sweeps) and optional emulated flaws (the harness self-test).
pub fn check_seed_with(env: &SimEnv, seed: u64, flaws: Flaws) -> Option<SimFailure> {
    let script = gen::script_for_seed(seed, env.device_count());
    let violation = match run_script_with(env, &script, flaws) {
        Ok(_) => return None,
        Err(v) => v,
    };
    let events = shrink::shrink_list(&script.events, |sub| {
        run_script_with(
            env,
            &Script {
                events: sub.to_vec(),
            },
            flaws,
        )
        .is_err()
    });
    let minimized = Script { events };
    // Report the violation the minimized script triggers (shrinking
    // preserves "some invariant fails", not necessarily the same one).
    let violation = run_script_with(env, &minimized, flaws)
        .err()
        .unwrap_or(violation);
    Some(SimFailure {
        seed,
        violation,
        original_events: script.events.len(),
        script: minimized,
    })
}

/// Sweep `count` seeds starting at `start` against one shared
/// environment, stopping at the first failure.
pub fn sweep(start: u64, count: u64) -> Result<SweepStats, SimFailure> {
    sweep_observed(start, count, &obskit::Registry::new())
}

/// [`sweep`], accumulating every seed's pipeline and simulation
/// metrics into `registry` (the `simnet --metrics` export path).
pub fn sweep_observed(
    start: u64,
    count: u64,
    registry: &obskit::Registry,
) -> Result<SweepStats, SimFailure> {
    sweep_sharded(start, count, registry, 1)
}

/// [`sweep_observed`] with every script executed against `shards`
/// shard-partitioned store sets — the deterministic mirror of the live
/// sharded [`rcdc::service::ValidationService`], with the convergence
/// invariants checked per shard and globally.
pub fn sweep_sharded(
    start: u64,
    count: u64,
    registry: &obskit::Registry,
    shards: usize,
) -> Result<SweepStats, SimFailure> {
    let env = SimEnv::figure3();
    let mut stats = SweepStats::default();
    for seed in start..start + count {
        let script = gen::script_for_seed(seed, env.device_count());
        match sim::run_script_sharded(&env, &script, Flaws::default(), registry, shards) {
            Ok(out) => stats.absorb(&out),
            Err(_) => {
                // Re-run through the shrinking path for the report.
                return Err(check_seed_with(&env, seed, Flaws::default())
                    .expect("failure must reproduce deterministically"));
            }
        }
        stats.seeds += 1;
    }
    Ok(stats)
}

/// Aggregate statistics over a clean seed sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Seeds that passed.
    pub seeds: u64,
    /// Script events executed.
    pub events: u64,
    /// Frames delivered.
    pub deliveries: u64,
    /// Full-snapshot fallback recoveries.
    pub fallbacks: u64,
    /// Verdicts produced.
    pub completed: u64,
    /// Verdicts by mode (full / incremental / cache hit).
    pub full: u64,
    /// Incremental-path verdicts.
    pub incremental: u64,
    /// Cache-served verdicts.
    pub cache_hits: u64,
}

impl SweepStats {
    fn absorb(&mut self, out: &SimOutcome) {
        self.events += out.events as u64;
        self.deliveries += out.deliveries;
        self.fallbacks += out.fallbacks;
        self.completed += out.completed;
        self.full += out.full;
        self.incremental += out.incremental;
        self.cache_hits += out.cache_hits;
    }
}

impl fmt::Display for SweepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seeds ok: {} events, {} deliveries ({} fallback recoveries), \
             {} verdicts ({} full / {} incremental / {} cached)",
            self.seeds,
            self.events,
            self.deliveries,
            self.fallbacks,
            self.completed,
            self.full,
            self.incremental,
            self.cache_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use script::{Action, ChurnKind, DeliveryFault, ScriptEvent};

    fn ev(at_ms: u64, action: Action) -> ScriptEvent {
        ScriptEvent { at_ms, action }
    }

    #[test]
    fn empty_script_converges_via_settle_sweep() {
        let env = SimEnv::figure3();
        let out = sim::run_script(&env, &Script::default()).expect("clean run");
        assert_eq!(out.events, 0);
        // The settle sweep pulls every device exactly once.
        assert_eq!(out.deliveries, env.device_count() as u64);
        assert_eq!(out.fallbacks, 0);
    }

    #[test]
    fn churn_then_pull_takes_the_incremental_path() {
        let env = SimEnv::figure3();
        let script = Script {
            events: vec![
                ev(0, Action::Pull { device: 0, latency_ms: 1, fault: DeliveryFault::None }),
                ev(10, Action::Churn { device: 0, kind: ChurnKind::DropRoute { index: 0 } }),
                ev(20, Action::Pull { device: 0, latency_ms: 1, fault: DeliveryFault::None }),
            ],
        };
        let out = sim::run_script(&env, &script).expect("clean run");
        assert!(out.incremental >= 1, "delta pull after churn must revalidate incrementally");
    }

    #[test]
    fn corrupted_delta_recovers_via_full_snapshot_fallback() {
        let env = SimEnv::figure3();
        let script = Script {
            events: vec![
                ev(0, Action::Pull { device: 3, latency_ms: 1, fault: DeliveryFault::None }),
                ev(10, Action::Churn { device: 3, kind: ChurnKind::NarrowEcmp { index: 0 } }),
                ev(
                    20,
                    Action::Pull {
                        device: 3,
                        latency_ms: 1,
                        fault: DeliveryFault::CorruptDelta { byte: 11 },
                    },
                ),
            ],
        };
        let out = sim::run_script(&env, &script).expect("corruption must be recoverable");
        assert!(out.fallbacks >= 1, "corrupt delta must trigger the full-snapshot fallback");
    }

    #[test]
    fn emulated_stale_epoch_cache_bug_is_caught_and_shrunk() {
        // The harness self-test: emulate a verdict cache that ignores
        // the contract epoch and confirm (a) the invariant checks
        // catch it, and (b) ddmin shrinks the schedule to the minimal
        // pull + republish pair that exposes it.
        let env = SimEnv::figure3();
        let flaws = Flaws { stale_epoch_cache: true };
        let failure = (0..64)
            .find_map(|seed| check_seed_with(&env, seed, flaws))
            .expect("some seed in 0..64 must expose the emulated staleness bug");
        assert_eq!(failure.violation.invariant, "cache-freshness");
        assert!(
            failure.script.events.len() <= 3,
            "expected a near-minimal schedule, got {} events:\n{}",
            failure.script.events.len(),
            failure.script
        );
        let rendered = failure.to_string();
        assert!(rendered.contains("replay: cargo run --release -p simnet"));
        assert!(rendered.contains(&format!("--seed {}", failure.seed)));
    }

    #[test]
    fn seed_sweep_smoke() {
        match sweep(0, 25) {
            Ok(stats) => {
                assert_eq!(stats.seeds, 25);
                assert!(stats.deliveries > 0 && stats.completed > 0);
            }
            Err(failure) => panic!("{failure}"),
        }
    }

    #[test]
    fn sharded_sweep_matches_unsharded_outcomes() {
        // Sharding partitions the device space; it must not change a
        // single outcome counter of a deterministic run.
        let r1 = obskit::Registry::new();
        let r4 = obskit::Registry::new();
        let unsharded = sweep_sharded(0, 10, &r1, 1).expect("clean");
        let sharded = sweep_sharded(0, 10, &r4, 4).expect("clean");
        assert_eq!(unsharded, sharded);
        // The bridged pipeline counters agree too (shard sums).
        for name in [
            "rcdc_verdict_cache_lookups_total",
            "rcdc_verdict_cache_hits_total",
            "rcdc_analytics_ingested_total",
        ] {
            assert_eq!(
                r1.snapshot().counter(name, &[]),
                r4.snapshot().counter(name, &[]),
                "{name}"
            );
        }
    }

    #[test]
    fn sharded_runner_still_catches_emulated_bugs() {
        let env = SimEnv::figure3();
        let flaws = Flaws { stale_epoch_cache: true };
        let broke = (0..64).find_map(|seed| {
            let script = gen::script_for_seed(seed, env.device_count());
            sim::run_script_sharded(&env, &script, flaws, &obskit::Registry::new(), 4).err()
        });
        assert_eq!(
            broke.expect("some seed must expose the bug under sharding").invariant,
            "cache-freshness"
        );
    }
}
