//! Greedy delta-debugging-style list minimization.
//!
//! The canonical implementation lives in [`rcdc::shrink`] (the what-if
//! sweeper minimizes counterexample scenarios with the same loop);
//! this module re-exports it so simnet's harnesses and the `difftest`
//! fuzzer keep their existing import path.

pub use rcdc::shrink::shrink_list;
