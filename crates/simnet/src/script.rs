//! The event script: a fully explicit, replayable fault schedule.
//!
//! A [`Script`] is the *entire* input of a simulation run — every pull,
//! every injected fault, every churn and contract republish, each with
//! its virtual timestamp. No randomness is consumed while a script
//! runs, so a script is its own reproduction: the seeded generator
//! (`crate::gen`) produces one from a seed, the runner executes it, and
//! the ddmin shrinker deletes events while the failure persists.
//! Device indices are taken modulo the topology size at run time, so a
//! script stays valid under shrinking.

use std::fmt;

/// A delivery-layer fault attached to one pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Deliver normally.
    None,
    /// The snapshot never arrives (pull timeout / lost frame).
    Drop,
    /// The frame arrives twice, the copy `gap_ms` later.
    Duplicate {
        /// Virtual delay between the two copies.
        gap_ms: u64,
    },
    /// Flip one byte of an on-the-wire `FIBD` delta frame (index taken
    /// modulo frame length). Full-snapshot frames are left intact:
    /// deltas are hash-anchored and therefore recoverable, which is
    /// exactly the property under test.
    CorruptDelta {
        /// Which byte to flip.
        byte: u32,
    },
    /// Deliver an *older* captured snapshot instead of the current one
    /// (a stale puller replaying history).
    Stale {
        /// How many captures to reach back (clamped to history).
        age: u32,
    },
}

/// A change to a device's true (network-side) forwarding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Withdraw one non-local route (index modulo eligible entries).
    DropRoute {
        /// Which eligible entry to drop.
        index: u32,
    },
    /// Narrow one multi-hop entry's ECMP set to a single hop.
    NarrowEcmp {
        /// Which eligible entry to narrow.
        index: u32,
    },
    /// The device comes back healthy (flap recovery).
    Restore,
}

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The puller fetches `device`'s current table; the frame arrives
    /// `latency_ms` later (slow pullers = large latencies, which is
    /// also how reordering across pulls arises).
    Pull {
        /// Device index (modulo topology size).
        device: u32,
        /// Virtual pull latency.
        latency_ms: u64,
        /// Fault injected into this delivery.
        fault: DeliveryFault,
    },
    /// The network changes `device`'s true table.
    Churn {
        /// Device index (modulo topology size).
        device: u32,
        /// What changes.
        kind: ChurnKind,
    },
    /// The contract generator republishes `device`'s contracts,
    /// bumping its epoch mid-sweep.
    Republish {
        /// Device index (modulo topology size).
        device: u32,
    },
}

/// One timestamped script event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptEvent {
    /// Virtual time the action starts, in milliseconds.
    pub at_ms: u64,
    /// The action.
    pub action: Action,
}

/// A complete simulation input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    /// The scheduled events (any order; the scheduler sorts by time).
    pub events: Vec<ScriptEvent>,
}

impl fmt::Display for ScriptEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:>5}ms ", self.at_ms)?;
        match self.action {
            Action::Pull {
                device,
                latency_ms,
                fault,
            } => {
                write!(f, "pull d{device} lat={latency_ms}ms")?;
                match fault {
                    DeliveryFault::None => Ok(()),
                    DeliveryFault::Drop => write!(f, " fault=drop"),
                    DeliveryFault::Duplicate { gap_ms } => {
                        write!(f, " fault=duplicate(+{gap_ms}ms)")
                    }
                    DeliveryFault::CorruptDelta { byte } => {
                        write!(f, " fault=corrupt-delta(byte {byte})")
                    }
                    DeliveryFault::Stale { age } => write!(f, " fault=stale(age {age})"),
                }
            }
            Action::Churn { device, kind } => match kind {
                ChurnKind::DropRoute { index } => {
                    write!(f, "churn d{device} drop-route({index})")
                }
                ChurnKind::NarrowEcmp { index } => {
                    write!(f, "churn d{device} narrow-ecmp({index})")
                }
                ChurnKind::Restore => write!(f, "churn d{device} restore"),
            },
            Action::Republish { device } => write!(f, "republish-contracts d{device}"),
        }
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}
