//! The deterministic simulation runner.
//!
//! [`run_script`] executes a [`Script`] against the *real* live
//! pipeline components — [`rcdc::pipeline::FibStore`],
//! [`rcdc::pipeline::VerdictCache`], [`rcdc::pipeline::ContractStore`],
//! [`rcdc::pipeline::StreamAnalytics`] and the per-notification
//! validator step [`rcdc::pipeline::validate_notification`] — under a
//! virtual clock and a single-threaded event scheduler. Snapshots
//! travel as real wire frames (`FIB1` full snapshots or hash-anchored
//! `FIBD` deltas); the injected faults of the script act on those
//! frames, and the receiver recovers from undecodable or stale deltas
//! by falling back to the full snapshot, exactly as §2.6.1's puller
//! would re-pull.
//!
//! After the script drains, a clean settle sweep pulls every device
//! once more and the convergence invariants are checked:
//!
//! 1. **convergence** — every device's final verdict equals a clean
//!    full validation of its final true table;
//! 2. **cache-freshness** — no [`rcdc::pipeline::VerdictCache`] entry
//!    survives keyed to a superseded `(fib_hash, epoch)` pair;
//! 3. **counter-balance** — `hits + misses == lookups` and
//!    `ingested == completed`;
//! 4. **incremental-agreement** — the delta path over the script's
//!    net churn reproduces the full verdict bit for bit.

use crate::script::{Action, ChurnKind, DeliveryFault, Script};
use bgpsim::{simulate, Fib, FibBuilder, SimConfig};
use dctopo::{DeviceId, MetadataService};
use netprim::wire::{frame_kind, FibDelta, FrameKind, WireSnapshot};
use obskit::Registry;
use rcdc::clock::VirtualClock;
use rcdc::contracts::{generate_contracts, DeviceContracts};
use rcdc::engine::{trie::TrieEngine, Engine};
use rcdc::pipeline::{validate_notification, PipelineMetrics, ValidateMode};
use rcdc::shard::ShardRouter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Duration;

/// The static world a simulation runs in: the Figure-3 fabric, its
/// healthy converged FIBs, and the generated contracts. Built once and
/// shared across a whole seed sweep (and across shrink attempts).
pub struct SimEnv {
    meta: MetadataService,
    healthy: Vec<Fib>,
    contracts: Vec<DeviceContracts>,
}

impl SimEnv {
    /// The Figure-3 fabric with healthy BGP-converged tables.
    pub fn figure3() -> SimEnv {
        let f = dctopo::generator::figure3();
        let healthy = simulate(&f.topology, &SimConfig::healthy());
        let meta = MetadataService::from_topology(&f.topology);
        let contracts = generate_contracts(&meta);
        SimEnv {
            meta,
            healthy,
            contracts,
        }
    }

    /// Number of devices in the fabric (script device indices are
    /// taken modulo this).
    pub fn device_count(&self) -> usize {
        self.healthy.len()
    }

    /// The fabric's metadata service.
    pub fn meta(&self) -> &MetadataService {
        &self.meta
    }
}

/// Deliberate soundness flaws the runner can emulate, proving the
/// invariant checks (and the shrinker behind them) have teeth. Not a
/// production switch: only the self-tests and the difftest `sim`
/// oracle's meta-check turn one on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flaws {
    /// Emulate a verdict cache keyed on the FIB hash alone: a cached
    /// verdict is served even after a contract republish bumped the
    /// epoch — the §2.6.1 staleness bug the `(fib_hash, epoch)` key
    /// exists to prevent.
    pub stale_epoch_cache: bool,
}

/// What a clean run reports back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimOutcome {
    /// Script events executed.
    pub events: usize,
    /// Wire frames delivered (duplicates counted; drops not).
    pub deliveries: u64,
    /// Deliveries that recovered via the full-snapshot fallback.
    pub fallbacks: u64,
    /// Validator notifications that produced a verdict.
    pub completed: u64,
    /// Verdicts produced by full validation.
    pub full: u64,
    /// Verdicts produced by the incremental delta path.
    pub incremental: u64,
    /// Verdicts served from the cache.
    pub cache_hits: u64,
}

/// One broken convergence invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke (stable name).
    pub invariant: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {} violated: {}", self.invariant, self.detail)
    }
}

/// A task in the virtual-time scheduler.
enum Task {
    Script(Action),
    Deliver {
        device: usize,
        frame: Vec<u8>,
        /// The full snapshot behind the frame — what a fallback
        /// re-pull of this delivery returns.
        payload: Fib,
    },
}

/// Heap entry ordered by (time, insertion sequence) so equal-time
/// tasks run in a deterministic FIFO order.
struct Scheduled {
    at_ms: u64,
    seq: u64,
    task: Task,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ms, self.seq) == (other.at_ms, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ms, self.seq).cmp(&(other.at_ms, other.seq))
    }
}

struct Sim<'e> {
    env: &'e SimEnv,
    flaws: Flaws,
    /// Shared metric registry: pipeline-component metrics bridge in,
    /// simulation-level counters (`simnet_*`) register directly.
    registry: Registry,
    metrics: PipelineMetrics,
    /// The network's true current table per device.
    truth: Vec<Fib>,
    /// Capture history per device (for stale re-deliveries).
    history: Vec<Vec<Fib>>,
    /// The puller's record of the last table each receiver acked.
    acked: Vec<Option<Fib>>,
    /// The pipeline stores, partitioned across shards exactly as the
    /// live [`rcdc::service::ValidationService`] partitions them. The
    /// scheduler stays single-threaded — sharding is a partition of
    /// the device space, so one deterministic event loop drives all
    /// shards without losing reproducibility.
    router: ShardRouter,
    /// Verdicts completed per shard (the per-shard half of the
    /// counter-balance invariant).
    completed_per_shard: Vec<u64>,
    clock: VirtualClock,
    engine: TrieEngine,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    out: SimOutcome,
}

impl<'e> Sim<'e> {
    fn new(env: &'e SimEnv, flaws: Flaws, registry: Registry, shards: usize) -> Sim<'e> {
        let router = ShardRouter::new(shards);
        router.publish_contracts(env.contracts.clone());
        let n = env.healthy.len();
        let completed_per_shard = vec![0; router.shard_count()];
        Sim {
            env,
            flaws,
            metrics: PipelineMetrics::new(&registry),
            registry,
            truth: env.healthy.clone(),
            history: vec![Vec::new(); n],
            acked: vec![None; n],
            router,
            completed_per_shard,
            clock: VirtualClock::new(),
            engine: TrieEngine::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            out: SimOutcome::default(),
        }
    }

    fn schedule(&mut self, at_ms: u64, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at_ms, seq, task }));
    }

    /// Run every scheduled task in virtual-time order.
    fn drain(&mut self) -> u64 {
        let mut last = 0;
        while let Some(Reverse(s)) = self.heap.pop() {
            last = s.at_ms;
            self.clock.advance_to(Duration::from_millis(s.at_ms));
            match s.task {
                Task::Script(action) => self.run_action(s.at_ms, action),
                Task::Deliver {
                    device,
                    frame,
                    payload,
                } => self.deliver(device, &frame, payload),
            }
        }
        last
    }

    fn run_action(&mut self, now_ms: u64, action: Action) {
        self.out.events += 1;
        let n = self.truth.len();
        match action {
            Action::Pull {
                device,
                latency_ms,
                fault,
            } => {
                let device = device as usize % n;
                self.pull(now_ms, device, latency_ms, fault);
            }
            Action::Churn { device, kind } => {
                let device = device as usize % n;
                self.truth[device] = churned(&self.truth[device], &self.env.healthy[device], kind);
            }
            Action::Republish { device } => {
                let device = device as usize % n;
                let id = DeviceId(device as u32);
                self.router
                    .stores(id)
                    .contracts
                    .put(id, self.env.contracts[device].clone());
            }
        }
    }

    /// Count one injected fault under `simnet_faults_total{kind=...}`.
    fn count_fault(&self, fault: DeliveryFault) {
        let kind = match fault {
            DeliveryFault::None => return,
            DeliveryFault::Drop => "drop",
            DeliveryFault::Duplicate { .. } => "duplicate",
            DeliveryFault::Stale { .. } => "stale",
            DeliveryFault::CorruptDelta { .. } => "corrupt_delta",
        };
        self.registry
            .counter(
                "simnet_faults_total",
                "injected delivery faults by kind",
                &[("kind", kind)],
            )
            .inc();
    }

    /// The puller side: capture the device's current table, frame it
    /// (delta against the last acked table when one exists, full
    /// snapshot otherwise), apply the wire fault, and schedule the
    /// delivery after the pull latency.
    fn pull(&mut self, now_ms: u64, device: usize, latency_ms: u64, fault: DeliveryFault) {
        self.count_fault(fault);
        let capture = self.truth[device].clone();
        self.history[device].push(capture.clone());
        let payload = match fault {
            DeliveryFault::Stale { age } => {
                let h = &self.history[device];
                h[h.len() - 1 - (age as usize).min(h.len() - 1)].clone()
            }
            _ => capture,
        };
        if matches!(fault, DeliveryFault::Drop) {
            return; // the frame is lost; no delivery, no ack
        }
        let mut frame: Vec<u8> = match &self.acked[device] {
            // An acked base exists: ship the (possibly empty) delta.
            Some(base) => Fib::delta(base, &payload).encode().to_vec(),
            None => payload.to_wire().encode().to_vec(),
        };
        if let DeliveryFault::CorruptDelta { byte } = fault {
            // Only delta frames are corrupted: they are hash-anchored,
            // so the receiver can always detect the damage and recover.
            if frame_kind(&frame) == Some(FrameKind::Delta) {
                let i = byte as usize % frame.len();
                frame[i] ^= 0x5A;
            }
        }
        let arrive = now_ms + latency_ms;
        if let DeliveryFault::Duplicate { gap_ms } = fault {
            self.schedule(
                arrive + gap_ms,
                Task::Deliver {
                    device,
                    frame: frame.clone(),
                    payload: payload.clone(),
                },
            );
        }
        self.schedule(
            arrive,
            Task::Deliver {
                device,
                frame,
                payload,
            },
        );
    }

    /// The receiver side: decode the frame, apply deltas against the
    /// stored base, fall back to the full snapshot when anything about
    /// the frame is unusable, park the result, and run the validator
    /// notification — the same code path `run_sweep`'s workers run.
    fn deliver(&mut self, device: usize, frame: &[u8], payload: Fib) {
        self.out.deliveries += 1;
        self.registry
            .counter(
                "simnet_deliveries_total",
                "wire frames delivered to the receiver",
                &[],
            )
            .inc();
        let decoded: Option<Fib> = match frame_kind(frame) {
            Some(FrameKind::Snapshot) => WireSnapshot::decode(frame)
                .and_then(|w| Fib::from_wire(&w))
                .ok(),
            Some(FrameKind::Delta) => FibDelta::decode(frame).ok().and_then(|d| {
                let id = DeviceId(device as u32);
                self.router
                    .stores(id)
                    .fibs
                    .get(id)
                    .and_then(|base| base.apply_delta(&d).ok())
            }),
            None => None,
        };
        let stored = match decoded {
            Some(fib) => fib,
            None => {
                // Full-snapshot fallback: re-pull the table behind the
                // unusable frame.
                self.out.fallbacks += 1;
                self.registry
                    .counter(
                        "simnet_fallbacks_total",
                        "deliveries recovered via the full-snapshot fallback",
                        &[],
                    )
                    .inc();
                payload
            }
        };
        self.acked[device] = Some(stored.clone());
        self.router.stores(DeviceId(device as u32)).fibs.put(stored);
        self.validate(device);
    }

    /// Process the notification for `device` on its owning shard.
    fn validate(&mut self, device: usize) {
        let device = DeviceId(device as u32);
        let shard = self.router.shard_of(device);
        let stores = self.router.shard(shard);
        if self.flaws.stale_epoch_cache {
            // Emulated bug: serve any cached verdict whose FIB hash
            // matches, ignoring the contract epoch.
            if let (Some(prior), Some(fib)) = (stores.cache.prior(device), stores.fibs.get(device))
            {
                if prior.fib_hash == fib.content_hash() {
                    self.out.completed += 1;
                    self.out.cache_hits += 1;
                    self.completed_per_shard[shard] += 1;
                    stores.analytics.ingest(rcdc::pipeline::PipelineResult {
                        device,
                        report: prior.report,
                        validate_time: Duration::ZERO,
                        mode: ValidateMode::CacheHit,
                    });
                    return;
                }
            }
        }
        if let Some(result) = validate_notification(
            device,
            &stores.contracts,
            &stores.fibs,
            &stores.cache,
            &self.engine,
            &self.clock,
            Some(&self.metrics),
        ) {
            self.out.completed += 1;
            self.completed_per_shard[shard] += 1;
            match result.mode {
                ValidateMode::Full => self.out.full += 1,
                ValidateMode::Incremental => self.out.incremental += 1,
                ValidateMode::CacheHit => self.out.cache_hits += 1,
            }
            stores.analytics.ingest(result);
        }
    }

    /// The clean settle sweep: one faultless pull of every device, so
    /// eventual convergence is observable no matter what the script's
    /// faults left behind.
    fn settle(&mut self, after_ms: u64) {
        for device in 0..self.truth.len() {
            self.pull(after_ms + 1, device, 0, DeliveryFault::None);
        }
        self.drain();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        // Wall-clock timing of the whole convergence check (records on
        // drop, so both the Ok and Err exits are measured).
        let _span = self
            .registry
            .histogram(
                "simnet_convergence_check_latency_ns",
                "wall-clock duration of the post-settle invariant check in nanoseconds",
                &[],
            )
            .start_timer();
        let n = self.truth.len();
        for device in 0..n {
            let id = DeviceId(device as u32);
            let stores = self.router.stores(id);
            let (contracts, epoch) = stores
                .contracts
                .get_versioned(id)
                .expect("every device has published contracts");
            let expected = self.engine.validate_device(&self.truth[device], &contracts);

            // 1. Convergence: the owning shard's analytics sink's last
            // word on the device equals a clean full validation of its
            // true table.
            let got = stores
                .analytics
                .result(id)
                .ok_or_else(|| InvariantViolation {
                    invariant: "convergence",
                    detail: format!("device {device}: no result after settle sweep"),
                })?;
            if got.report != expected {
                return Err(InvariantViolation {
                    invariant: "convergence",
                    detail: format!(
                        "device {device}: final verdict diverges from a clean full sweep \
                         (got {} violations via {:?}, expected {})",
                        got.report.violations.len(),
                        got.mode,
                        expected.violations.len()
                    ),
                });
            }

            // 2. Cache freshness: no cached verdict outlives its
            // (fib_hash, epoch) key.
            let cached = stores.cache.prior(id).ok_or_else(|| InvariantViolation {
                invariant: "cache-freshness",
                detail: format!("device {device}: no cached verdict after settle sweep"),
            })?;
            let truth_hash = self.truth[device].content_hash();
            if cached.fib_hash != truth_hash || cached.contract_epoch != epoch {
                return Err(InvariantViolation {
                    invariant: "cache-freshness",
                    detail: format!(
                        "device {device}: cache holds ({:#x}, epoch {}), current state is \
                         ({truth_hash:#x}, epoch {epoch}) — a superseded verdict survived",
                        cached.fib_hash, cached.contract_epoch
                    ),
                });
            }
            if cached.report != expected {
                return Err(InvariantViolation {
                    invariant: "cache-freshness",
                    detail: format!("device {device}: cached report diverges from full sweep"),
                });
            }

            // 4. Incremental/full agreement over the script's net
            // churn, exercised directly on the engine.
            let prior = self.engine.validate_device(&self.env.healthy[device], &contracts);
            let delta = Fib::delta(&self.env.healthy[device], &self.truth[device]);
            let incr = self
                .engine
                .validate_delta(&self.truth[device], &contracts, &delta, &prior);
            if incr != expected {
                return Err(InvariantViolation {
                    invariant: "incremental-agreement",
                    detail: format!(
                        "device {device}: validate_delta over net churn ({} rules) diverges \
                         from validate_device",
                        delta.rule_count()
                    ),
                });
            }
        }

        // 3. Counter balance, read through the unified metrics API —
        // checked per shard (each shard's own stores balance) and
        // globally (the shard sums equal the run's totals).
        let mut total_lookups = 0;
        let mut total_hits = 0;
        let mut total_misses = 0;
        let mut total_ingested = 0;
        for (shard, stores) in self.router.iter().enumerate() {
            let cache_snap = stores.cache.snapshot();
            let counter = |name| cache_snap.counter(name, &[]).unwrap_or(0);
            let lookups = counter("rcdc_verdict_cache_lookups_total");
            let hits = counter("rcdc_verdict_cache_hits_total");
            let misses = counter("rcdc_verdict_cache_misses_total");
            if hits + misses != lookups {
                return Err(InvariantViolation {
                    invariant: "counter-balance",
                    detail: format!(
                        "shard {shard}: cache lookups {lookups} != hits {hits} + misses {misses}"
                    ),
                });
            }
            let ingested = stores
                .analytics
                .snapshot()
                .counter("rcdc_analytics_ingested_total", &[])
                .unwrap_or(0);
            if ingested != self.completed_per_shard[shard] {
                return Err(InvariantViolation {
                    invariant: "counter-balance",
                    detail: format!(
                        "shard {shard}: analytics ingested {ingested} != completed \
                         validations {}",
                        self.completed_per_shard[shard]
                    ),
                });
            }
            total_lookups += lookups;
            total_hits += hits;
            total_misses += misses;
            total_ingested += ingested;
        }
        if total_hits + total_misses != total_lookups {
            return Err(InvariantViolation {
                invariant: "counter-balance",
                detail: format!(
                    "global: cache lookups {total_lookups} != hits {total_hits} + misses \
                     {total_misses}"
                ),
            });
        }
        if total_ingested != self.out.completed {
            return Err(InvariantViolation {
                invariant: "counter-balance",
                detail: format!(
                    "global: analytics ingested {total_ingested} != completed validations {}",
                    self.out.completed
                ),
            });
        }
        Ok(())
    }
}

/// Apply one churn to a device's true table.
fn churned(current: &Fib, healthy: &Fib, kind: ChurnKind) -> Fib {
    match kind {
        ChurnKind::Restore => healthy.clone(),
        ChurnKind::DropRoute { index } => {
            let eligible: Vec<_> = current
                .entries()
                .iter()
                .filter(|e| !e.local)
                .map(|e| e.prefix)
                .collect();
            if eligible.is_empty() {
                return current.clone();
            }
            let target = eligible[index as usize % eligible.len()];
            let mut b = FibBuilder::new(current.device());
            for e in current.entries() {
                if e.prefix == target {
                    continue;
                }
                b.push(e.prefix, current.next_hops(e).to_vec(), e.local);
            }
            b.finish()
        }
        ChurnKind::NarrowEcmp { index } => {
            let eligible: Vec<_> = current
                .entries()
                .iter()
                .filter(|e| current.next_hops(e).len() > 1)
                .map(|e| e.prefix)
                .collect();
            if eligible.is_empty() {
                return current.clone();
            }
            let target = eligible[index as usize % eligible.len()];
            let mut b = FibBuilder::new(current.device());
            for e in current.entries() {
                let mut hops = current.next_hops(e).to_vec();
                if e.prefix == target {
                    hops.truncate(1);
                }
                b.push(e.prefix, hops, e.local);
            }
            b.finish()
        }
    }
}

/// Execute a script against a fresh pipeline in `env` and check the
/// convergence invariants. Fully deterministic: same env + script →
/// same outcome, including every counter.
pub fn run_script(env: &SimEnv, script: &Script) -> Result<SimOutcome, InvariantViolation> {
    run_script_with(env, script, Flaws::default())
}

/// [`run_script`] with emulated soundness flaws — the self-test hook
/// proving the invariants catch real staleness bugs.
pub fn run_script_with(
    env: &SimEnv,
    script: &Script,
    flaws: Flaws,
) -> Result<SimOutcome, InvariantViolation> {
    run_script_observed(env, script, flaws, &Registry::new())
}

/// [`run_script_with`], exporting metrics into `registry`: the
/// simulation's own `simnet_*` families plus the live pipeline
/// components' `rcdc_*` families, bridged in after the run.
pub fn run_script_observed(
    env: &SimEnv,
    script: &Script,
    flaws: Flaws,
    registry: &Registry,
) -> Result<SimOutcome, InvariantViolation> {
    run_script_sharded(env, script, flaws, registry, 1)
}

/// [`run_script_observed`] over `shards` shard-partitioned store sets:
/// the device space splits exactly as the live
/// [`rcdc::service::ValidationService`] splits it, one deterministic
/// single-threaded scheduler drives every shard, and the convergence
/// invariants are checked per shard and globally. `shards = 1` is the
/// pre-sharding runner, unchanged.
pub fn run_script_sharded(
    env: &SimEnv,
    script: &Script,
    flaws: Flaws,
    registry: &Registry,
    shards: usize,
) -> Result<SimOutcome, InvariantViolation> {
    let mut sim = Sim::new(env, flaws, registry.clone(), shards);
    for e in &script.events {
        sim.schedule(e.at_ms, Task::Script(e.action));
    }
    let last = sim.drain();
    sim.settle(last);
    let result = sim.check_invariants();
    // Accumulate the per-run pipeline counters (summed across shards)
    // into the (possibly sweep-shared) registry — even when an
    // invariant broke, the counters are part of the evidence.
    // Accumulation rather than handle adoption: each script runs fresh
    // stores, but a seed sweep shares one registry across all of them.
    for stores in sim.router.iter() {
        let cache_snap = stores.cache.snapshot();
        for (name, help) in [
            ("rcdc_verdict_cache_lookups_total", "verdict-cache lookups"),
            ("rcdc_verdict_cache_hits_total", "verdict-cache hits"),
            ("rcdc_verdict_cache_misses_total", "verdict-cache misses"),
        ] {
            registry
                .counter(name, help, &[])
                .add(cache_snap.counter(name, &[]).unwrap_or(0));
        }
        let ingested = stores
            .analytics
            .snapshot()
            .counter("rcdc_analytics_ingested_total", &[])
            .unwrap_or(0);
        registry
            .counter(
                "rcdc_analytics_ingested_total",
                "results ingested by the stream-analytics sink",
                &[],
            )
            .add(ingested);
    }
    result?;
    Ok(sim.out)
}
