//! Deterministic PRNG for reproducible case generation.
//!
//! SplitMix64: tiny, fast, and — unlike the thread-local entropy most
//! fuzzers default to — every case is a pure function of its seed, so
//! the seed printed in a failure report IS the reproduction. Shared by
//! the simulation harness and the `difftest` differential fuzzer
//! (which re-exports this module rather than keeping a second copy).

/// One SplitMix64 mixing step (also used to derive sub-stream seeds).
pub fn mix(seed: u64, tag: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(tag)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The generator state.
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Rng::new(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.range(2, 6);
            assert!((2..=6).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
