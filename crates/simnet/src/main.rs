//! Seed-sweep driver for the deterministic pipeline simulation.
//!
//! ```text
//! simnet --seed 0 --count 300
//! ```
//!
//! Exit status 0 when every seed's schedule converges; on an invariant
//! violation, prints the minimized schedule plus a replay command and
//! exits 1.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 0u64;
    let mut count = 300u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = parse(args.next(), "--seed"),
            "--count" => count = parse(args.next(), "--count"),
            "--help" | "-h" => {
                println!("usage: simnet [--seed N] [--count M]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simnet: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("simnet: sweeping {count} seeds from {seed}");
    match simnet::sweep(seed, count) {
        Ok(stats) => {
            println!("{stats}");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("{failure}");
            ExitCode::FAILURE
        }
    }
}

fn parse(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("simnet: {flag} needs a numeric value");
        std::process::exit(2);
    })
}
