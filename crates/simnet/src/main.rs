//! Seed-sweep driver for the deterministic pipeline simulation.
//!
//! ```text
//! simnet --seed 0 --count 300 [--shards N] [--metrics <path|->]
//! ```
//!
//! Exit status 0 when every seed's schedule converges; on an invariant
//! violation, prints the minimized schedule plus a replay command and
//! exits 1. `--shards N` runs every script against N shard-partitioned
//! store sets (the sharded-service configuration) with the invariants
//! checked per shard and globally. With `--metrics`, the sweep's
//! accumulated metric registry is exported after the run: `-` writes
//! Prometheus text to stdout, a `.json` path writes the JSON form, any
//! other path Prometheus text.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 0u64;
    let mut count = 300u64;
    let mut shards = 1u64;
    let mut metrics_dest: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = parse(args.next(), "--seed"),
            "--count" => count = parse(args.next(), "--count"),
            "--shards" => shards = parse(args.next(), "--shards").max(1),
            "--metrics" => {
                metrics_dest = Some(args.next().unwrap_or_else(|| {
                    eprintln!("simnet: --metrics needs a path (or - for stdout)");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!("usage: simnet [--seed N] [--count M] [--shards N] [--metrics <path|->]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simnet: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    // With metrics on stdout, the human-facing lines move to stderr so
    // the Prometheus exposition stays machine-parseable.
    let metrics_stdout = metrics_dest.as_deref() == Some("-");
    let over = if shards > 1 {
        format!(" over {shards} shards")
    } else {
        String::new()
    };
    if metrics_stdout {
        eprintln!("simnet: sweeping {count} seeds from {seed}{over}");
    } else {
        println!("simnet: sweeping {count} seeds from {seed}{over}");
    }
    let registry = obskit::Registry::new();
    let result = simnet::sweep_sharded(seed, count, &registry, shards as usize);
    if let Some(dest) = metrics_dest {
        if let Err(e) = export_metrics(&registry, &dest) {
            eprintln!("simnet: cannot write metrics to {dest:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(stats) => {
            if metrics_stdout {
                eprintln!("{stats}");
            } else {
                println!("{stats}");
            }
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("{failure}");
            ExitCode::FAILURE
        }
    }
}

/// Write the registry to `dest`: `-` → Prometheus text on stdout,
/// `*.json` → JSON file, anything else → Prometheus text file.
fn export_metrics(registry: &obskit::Registry, dest: &str) -> std::io::Result<()> {
    registry.snapshot().write_to(dest)
}

fn parse(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("simnet: {flag} needs a numeric value");
        std::process::exit(2);
    })
}
