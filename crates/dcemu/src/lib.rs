//! # dcemu — emulated-network pre-checks for configuration changes
//!
//! "A built-in limitation of live monitoring is that it can only detect
//! dangerous changes after they have occurred. To prevent a large class
//! of faulty updates from entering in the first place Azure uses a
//! high-fidelity network emulator \[CrystalNet\]… RCDC is then used on
//! FIBs extracted from these networks, reporting the same class of
//! errors as on the live network" (§2.7).
//!
//! The substitution (documented in DESIGN.md): instead of emulating
//! vendor device software, the emulator clones the production network
//! model (`dctopo` topology + `bgpsim` configuration), applies the
//! candidate [`ConfigChange`]s, converges the control plane, extracts
//! FIBs, and runs the *same* RCDC validation as live monitoring. The
//! property the paper relies on — identical error classes pre- and
//! post-deployment — holds by construction and is tested.
//!
//! The machinery itself now lives in [`rcdc::rollout`], constructed
//! through the unified builder —
//! [`ValidatorBuilder::build_precheck`](rcdc::ValidatorBuilder::build_precheck)
//! for the Figure-7 workflow ([`Prechecker`]) and
//! [`build_planner`](rcdc::ValidatorBuilder::build_planner) for safe
//! change-*ordering* search ([`rcdc::RolloutPlanner`]). This crate
//! re-exports the shared vocabulary and keeps the original
//! free-standing entry points as deprecated shims (the PR 1/PR 6
//! deprecation pattern), covered by equivalence tests below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcdc::rollout::{
    ConfigChange, ManagedNetwork, Prechecker, PrecheckReport, WorkflowOutcome,
};

use dctopo::MetadataService;
use rcdc::contracts::{generate_contracts, DeviceContracts};
use rcdc::Validator;

/// Run the emulator pre-check for a set of changes against a
/// production network: clone, apply, converge, compare against the
/// baseline validation.
#[deprecated(
    note = "construct a Prechecker via \
            Validator::with_contracts(contracts).build_precheck(production) \
            and call .precheck(changes)"
)]
pub fn precheck(
    production: &ManagedNetwork,
    contracts: &[DeviceContracts],
    changes: &[ConfigChange],
) -> PrecheckReport {
    Validator::with_contracts(contracts.to_vec())
        .build_precheck(production)
        .precheck(changes)
}

/// The change-validation workflow of Figure 7.
///
/// Deprecated shim: each [`submit`](Self::submit) now delegates to a
/// [`Prechecker`] built through the unified
/// [`ValidatorBuilder`](rcdc::ValidatorBuilder) path.
#[deprecated(
    note = "construct a Prechecker via Validator::new(&meta).build_precheck(production); \
            it owns the production network and the Figure-7 submit workflow"
)]
pub struct ChangeWorkflow {
    /// The production network (mutated only by successful deploys).
    pub production: ManagedNetwork,
    contracts: Vec<DeviceContracts>,
}

#[allow(deprecated)]
impl ChangeWorkflow {
    /// Set up the workflow: contracts are generated once from the
    /// production metadata (intent does not change with state).
    pub fn new(production: ManagedNetwork) -> ChangeWorkflow {
        let meta = MetadataService::from_topology(&production.topology);
        let contracts = generate_contracts(&meta);
        ChangeWorkflow {
            production,
            contracts,
        }
    }

    /// The generated contract sets (indexed by device).
    pub fn contracts(&self) -> &[DeviceContracts] {
        &self.contracts
    }

    /// Run a change set through pre-check → deploy → post-check.
    pub fn submit(&mut self, changes: &[ConfigChange]) -> WorkflowOutcome {
        let mut checker = Validator::with_contracts(self.contracts.clone())
            .build_precheck(&self.production);
        let outcome = checker.submit(changes);
        self.production = checker.into_production();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::{DeviceOverride, SimConfig};
    use dctopo::generator::figure3;
    use dctopo::LinkState;

    fn checker() -> (dctopo::generator::Figure3, Prechecker) {
        let f = figure3();
        let meta = MetadataService::from_topology(&f.topology);
        let c = Validator::new(&meta).build_precheck(&ManagedNetwork::new(f.topology.clone()));
        (f, c)
    }

    #[test]
    fn healthy_baseline_validates_clean() {
        let (_f, c) = checker();
        let violations = c.validate(c.production());
        assert!(violations.is_empty());
    }

    #[test]
    fn bad_route_map_change_rejected_at_precheck() {
        // The §2.6.2 "policy error": a route map rejecting default
        // announcements. The pre-check must block it.
        let (f, mut c) = checker();
        let cfg = DeviceOverride {
            reject_default_import: true,
            ..DeviceOverride::default()
        };
        let outcome = c.submit(&[ConfigChange::SetOverride {
            device: f.tors[0],
            config: cfg,
        }]);
        match outcome {
            WorkflowOutcome::RejectedAtPrecheck(report) => {
                assert!(!report.passed());
                assert!(report
                    .regressions()
                    .iter()
                    .any(|v| v.device == f.tors[0] && v.prefix.is_default()));
            }
            other => panic!("{other:?}"),
        }
        // Production untouched: still clean.
        assert!(c.validate(c.production()).is_empty());
    }

    #[test]
    fn asn_collision_migration_rejected_at_precheck() {
        let (f, mut c) = checker();
        let asn = f.topology.device(f.a[0]).asn;
        let changes: Vec<ConfigChange> = f
            .b
            .iter()
            .map(|&leaf| {
                let cfg = DeviceOverride {
                    asn_override: Some(asn),
                    ..DeviceOverride::default()
                };
                ConfigChange::SetOverride {
                    device: leaf,
                    config: cfg,
                }
            })
            .collect();
        assert!(matches!(
            c.submit(&changes),
            WorkflowOutcome::RejectedAtPrecheck(_)
        ));
    }

    #[test]
    fn benign_change_deploys_with_green_postcheck() {
        // Clearing an (absent) override is a no-op change: passes
        // pre-check and deploys.
        let (f, mut c) = checker();
        let outcome = c.submit(&[ConfigChange::SetOverride {
            device: f.tors[0],
            config: DeviceOverride::default(),
        }]);
        assert!(matches!(outcome, WorkflowOutcome::Deployed));
    }

    #[test]
    fn link_shutdown_for_maintenance_is_caught() {
        // Shutting a ToR uplink violates the ToR's default contract
        // (reduced ECMP) — precheck rejects; the operator knows the
        // maintenance will reduce redundancy before touching anything.
        let (f, mut c) = checker();
        let link = f.topology.link_between(f.tors[0], f.a[0]).unwrap().id;
        let outcome = c.submit(&[ConfigChange::SetLinkState {
            link,
            state: LinkState::AdminShut,
        }]);
        match outcome {
            WorkflowOutcome::RejectedAtPrecheck(report) => {
                let regs = report.regressions();
                assert!(regs.iter().any(|v| v.device == f.tors[0]));
                // The leaf loses its route toward the ToR's prefix.
                assert!(regs.iter().any(|v| v.device == f.a[0]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precheck_ignores_preexisting_violations() {
        // Production already has a fault; an unrelated benign change
        // must not be blamed for it.
        let f = figure3();
        let mut production = ManagedNetwork::new(f.topology.clone());
        let link = production
            .topology
            .link_between(f.tors[1], f.a[3])
            .unwrap()
            .id;
        production.topology.set_link_state(link, LinkState::OperDown);
        let meta = MetadataService::from_topology(&f.topology);
        let mut c = Validator::new(&meta).build_precheck(&production);
        let baseline = c.validate(c.production());
        assert!(!baseline.is_empty(), "pre-existing fault is visible");
        let outcome = c.submit(&[ConfigChange::SetOverride {
            device: f.tors[0],
            config: DeviceOverride::default(),
        }]);
        assert!(matches!(outcome, WorkflowOutcome::Deployed));
    }

    #[test]
    fn emulator_reports_same_error_classes_as_live() {
        // §2.7's core property: RCDC on emulated FIBs reports the same
        // violations as RCDC on the "live" network with the same state.
        let f = figure3();
        let mut cfg = SimConfig::healthy();
        cfg = cfg.with_rib_fib_bug(f.tors[0], 1);
        let live = ManagedNetwork {
            topology: f.topology.clone(),
            config: cfg.clone(),
        };
        let emulated = live.clone();
        let meta = MetadataService::from_topology(&f.topology);
        let contracts = generate_contracts(&meta);
        let live_violations = live.validate(&contracts);
        let emu_violations = emulated.validate(&contracts);
        assert_eq!(live_violations, emu_violations);
        assert!(!live_violations.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_precheck_shim_matches_builder_path() {
        let (f, c) = checker();
        let changes = [ConfigChange::SetOverride {
            device: f.tors[0],
            config: DeviceOverride {
                reject_default_import: true,
                ..DeviceOverride::default()
            },
        }];
        let via_shim = precheck(c.production(), c.contracts(), &changes);
        let via_builder = c.precheck(&changes);
        assert_eq!(via_shim.baseline, via_builder.baseline);
        assert_eq!(via_shim.candidate, via_builder.candidate);
        assert_eq!(via_shim.passed(), via_builder.passed());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_workflow_shim_matches_builder_path() {
        let f = figure3();
        let meta = MetadataService::from_topology(&f.topology);
        let mut shim = ChangeWorkflow::new(ManagedNetwork::new(f.topology.clone()));
        let mut direct =
            Validator::new(&meta).build_precheck(&ManagedNetwork::new(f.topology.clone()));
        assert_eq!(shim.contracts(), direct.contracts());
        let bad = [ConfigChange::SetLinkState {
            link: f.topology.link_between(f.tors[0], f.a[0]).unwrap().id,
            state: LinkState::AdminShut,
        }];
        let benign = [ConfigChange::SetOverride {
            device: f.tors[0],
            config: DeviceOverride::default(),
        }];
        for changes in [&bad[..], &benign[..]] {
            let a = shim.submit(changes);
            let b = direct.submit(changes);
            assert_eq!(
                std::mem::discriminant(&a),
                std::mem::discriminant(&b),
                "{a:?} vs {b:?}"
            );
        }
        // Deploys kept the two production models in lockstep.
        assert_eq!(
            shim.production.validate(shim.contracts()),
            direct.validate(direct.production())
        );
    }
}
