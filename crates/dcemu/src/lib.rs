//! # dcemu — emulated-network pre-checks for configuration changes
//!
//! "A built-in limitation of live monitoring is that it can only detect
//! dangerous changes after they have occurred. To prevent a large class
//! of faulty updates from entering in the first place Azure uses a
//! high-fidelity network emulator \[CrystalNet\]… RCDC is then used on
//! FIBs extracted from these networks, reporting the same class of
//! errors as on the live network" (§2.7).
//!
//! The substitution (documented in DESIGN.md): instead of emulating
//! vendor device software, the emulator clones the production network
//! model (`dctopo` topology + `bgpsim` configuration), applies the
//! candidate [`ConfigChange`]s, converges the control plane, extracts
//! FIBs, and runs the *same* RCDC validation as live monitoring. The
//! property the paper relies on — identical error classes pre- and
//! post-deployment — holds by construction and is tested.
//!
//! [`ChangeWorkflow`] is Figure 7: candidate change → emulate →
//! validate → deploy (to the simulated production network) →
//! post-validate → rollback on regression.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgpsim::{simulate, DeviceOverride, SimConfig};
use dctopo::{DeviceId, LinkId, LinkState, MetadataService, Topology};
use rcdc::contracts::{generate_contracts, DeviceContracts};
use rcdc::report::Violation;
use rcdc::Validator;

/// One configuration change under review.
#[derive(Debug, Clone)]
pub enum ConfigChange {
    /// Replace a device's configuration overrides (route maps, ECMP
    /// settings, ASN) — the §2.6.2 "policy error" and "migration"
    /// change classes.
    SetOverride {
        /// Target device.
        device: DeviceId,
        /// New override (use `DeviceOverride::default()` to clear).
        config: DeviceOverride,
    },
    /// Administratively change a link/session state (maintenance,
    /// lossy-link mitigation, decommissioning).
    SetLinkState {
        /// Target link.
        link: LinkId,
        /// New state.
        state: LinkState,
    },
}

/// The production network being managed: the model both the emulator
/// clones and deployments mutate.
#[derive(Clone)]
pub struct ManagedNetwork {
    /// Physical topology, including current link states.
    pub topology: Topology,
    /// Device configuration overrides currently in production.
    pub config: SimConfig,
}

impl ManagedNetwork {
    /// A healthy network over a topology.
    pub fn new(topology: Topology) -> ManagedNetwork {
        ManagedNetwork {
            topology,
            config: SimConfig::healthy(),
        }
    }

    /// Apply a change in place (used for production deploys and on the
    /// emulator clone).
    pub fn apply(&mut self, change: &ConfigChange) {
        match change {
            ConfigChange::SetOverride { device, config } => {
                *self.config.device_mut(*device) = config.clone();
            }
            ConfigChange::SetLinkState { link, state } => {
                self.topology.set_link_state(*link, *state);
            }
        }
    }

    /// Converge the control plane and validate every device; returns
    /// all violations (the flattened datacenter report).
    pub fn validate(&self, contracts: &[DeviceContracts]) -> Vec<Violation> {
        let fibs = simulate(&self.topology, &self.config);
        let report = Validator::with_contracts(contracts.to_vec()).build().run(&fibs);
        report
            .reports
            .into_iter()
            .flat_map(|r| r.violations)
            .collect()
    }
}

/// Result of a pre-check run.
#[derive(Debug)]
pub struct PrecheckReport {
    /// Violations present before the change (pre-existing conditions
    /// are not the change's fault).
    pub baseline: Vec<Violation>,
    /// Violations present after the change, on the emulator.
    pub candidate: Vec<Violation>,
}

impl PrecheckReport {
    /// Violations introduced by the change: candidate minus baseline.
    pub fn regressions(&self) -> Vec<&Violation> {
        self.candidate
            .iter()
            .filter(|v| !self.baseline.contains(v))
            .collect()
    }

    /// Does the change pass (no new violations)?
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }
}

/// Run the emulator pre-check for a set of changes against a
/// production network: clone, apply, converge, compare against the
/// baseline validation.
pub fn precheck(
    production: &ManagedNetwork,
    contracts: &[DeviceContracts],
    changes: &[ConfigChange],
) -> PrecheckReport {
    let baseline = production.validate(contracts);
    let mut emulated = production.clone();
    for c in changes {
        emulated.apply(c);
    }
    let candidate = emulated.validate(contracts);
    PrecheckReport {
        baseline,
        candidate,
    }
}

/// Outcome of the full Figure-7 workflow for one change set.
#[derive(Debug)]
pub enum WorkflowOutcome {
    /// Pre-check failed: the change never reached production.
    RejectedAtPrecheck(PrecheckReport),
    /// Deployed; post-validation green.
    Deployed,
    /// Deployed, post-validation regressed (e.g. emulator/production
    /// divergence injected in tests), change rolled back.
    RolledBack {
        /// The violations seen post-deployment.
        regressions: Vec<Violation>,
    },
}

/// The change-validation workflow of Figure 7.
pub struct ChangeWorkflow {
    /// The production network (mutated only by successful deploys).
    pub production: ManagedNetwork,
    contracts: Vec<DeviceContracts>,
}

impl ChangeWorkflow {
    /// Set up the workflow: contracts are generated once from the
    /// production metadata (intent does not change with state).
    pub fn new(production: ManagedNetwork) -> ChangeWorkflow {
        let meta = MetadataService::from_topology(&production.topology);
        let contracts = generate_contracts(&meta);
        ChangeWorkflow {
            production,
            contracts,
        }
    }

    /// The generated contract sets (indexed by device).
    pub fn contracts(&self) -> &[DeviceContracts] {
        &self.contracts
    }

    /// Run a change set through pre-check → deploy → post-check.
    pub fn submit(&mut self, changes: &[ConfigChange]) -> WorkflowOutcome {
        let pre = precheck(&self.production, &self.contracts, changes);
        if !pre.passed() {
            return WorkflowOutcome::RejectedAtPrecheck(pre);
        }
        // Deploy to production.
        let before = self.production.clone();
        for c in changes {
            self.production.apply(c);
        }
        // Post-check on the live network.
        let post = self.production.validate(&self.contracts);
        let regressions: Vec<Violation> = post
            .into_iter()
            .filter(|v| !pre.baseline.contains(v))
            .collect();
        if regressions.is_empty() {
            WorkflowOutcome::Deployed
        } else {
            self.production = before;
            WorkflowOutcome::RolledBack { regressions }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::SimConfig;
    use dctopo::generator::figure3;

    fn workflow() -> (dctopo::generator::Figure3, ChangeWorkflow) {
        let f = figure3();
        let w = ChangeWorkflow::new(ManagedNetwork::new(f.topology.clone()));
        (f, w)
    }

    #[test]
    fn healthy_baseline_validates_clean() {
        let (_f, w) = workflow();
        let violations = w.production.validate(w.contracts());
        assert!(violations.is_empty());
    }

    #[test]
    fn bad_route_map_change_rejected_at_precheck() {
        // The §2.6.2 "policy error": a route map rejecting default
        // announcements. The pre-check must block it.
        let (f, mut w) = workflow();
        let cfg = DeviceOverride {
            reject_default_import: true,
            ..DeviceOverride::default()
        };
        let outcome = w.submit(&[ConfigChange::SetOverride {
            device: f.tors[0],
            config: cfg,
        }]);
        match outcome {
            WorkflowOutcome::RejectedAtPrecheck(report) => {
                assert!(!report.passed());
                assert!(report
                    .regressions()
                    .iter()
                    .any(|v| v.device == f.tors[0] && v.prefix.is_default()));
            }
            other => panic!("{other:?}"),
        }
        // Production untouched: still clean.
        assert!(w.production.validate(w.contracts()).is_empty());
    }

    #[test]
    fn asn_collision_migration_rejected_at_precheck() {
        let (f, mut w) = workflow();
        let asn = f.topology.device(f.a[0]).asn;
        let changes: Vec<ConfigChange> = f
            .b
            .iter()
            .map(|&leaf| {
                let cfg = DeviceOverride {
                    asn_override: Some(asn),
                    ..DeviceOverride::default()
                };
                ConfigChange::SetOverride {
                    device: leaf,
                    config: cfg,
                }
            })
            .collect();
        assert!(matches!(
            w.submit(&changes),
            WorkflowOutcome::RejectedAtPrecheck(_)
        ));
    }

    #[test]
    fn benign_change_deploys_with_green_postcheck() {
        // Clearing an (absent) override is a no-op change: passes
        // pre-check and deploys.
        let (f, mut w) = workflow();
        let outcome = w.submit(&[ConfigChange::SetOverride {
            device: f.tors[0],
            config: DeviceOverride::default(),
        }]);
        assert!(matches!(outcome, WorkflowOutcome::Deployed));
    }

    #[test]
    fn link_shutdown_for_maintenance_is_caught() {
        // Shutting a ToR uplink violates the ToR's default contract
        // (reduced ECMP) — precheck rejects; the operator knows the
        // maintenance will reduce redundancy before touching anything.
        let (f, mut w) = workflow();
        let link = f.topology.link_between(f.tors[0], f.a[0]).unwrap().id;
        let outcome = w.submit(&[ConfigChange::SetLinkState {
            link,
            state: LinkState::AdminShut,
        }]);
        match outcome {
            WorkflowOutcome::RejectedAtPrecheck(report) => {
                let regs = report.regressions();
                assert!(regs.iter().any(|v| v.device == f.tors[0]));
                // The leaf loses its route toward the ToR's prefix.
                assert!(regs.iter().any(|v| v.device == f.a[0]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precheck_ignores_preexisting_violations() {
        // Production already has a fault; an unrelated benign change
        // must not be blamed for it.
        let (f, _unused) = workflow();
        let mut production = ManagedNetwork::new(f.topology.clone());
        let link = production
            .topology
            .link_between(f.tors[1], f.a[3])
            .unwrap()
            .id;
        production.topology.set_link_state(link, LinkState::OperDown);
        let mut w = ChangeWorkflow::new(production);
        let baseline = w.production.validate(w.contracts());
        assert!(!baseline.is_empty(), "pre-existing fault is visible");
        let outcome = w.submit(&[ConfigChange::SetOverride {
            device: f.tors[0],
            config: DeviceOverride::default(),
        }]);
        assert!(matches!(outcome, WorkflowOutcome::Deployed));
    }

    #[test]
    fn emulator_reports_same_error_classes_as_live() {
        // §2.7's core property: RCDC on emulated FIBs reports the same
        // violations as RCDC on the "live" network with the same state.
        let f = figure3();
        let mut cfg = SimConfig::healthy();
        cfg = cfg.with_rib_fib_bug(f.tors[0], 1);
        let live = ManagedNetwork {
            topology: f.topology.clone(),
            config: cfg.clone(),
        };
        let emulated = live.clone();
        let meta = MetadataService::from_topology(&f.topology);
        let contracts = generate_contracts(&meta);
        let live_violations = live.validate(&contracts);
        let emu_violations = emulated.validate(&contracts);
        assert_eq!(live_violations, emu_violations);
        assert!(!live_violations.is_empty());
    }
}
