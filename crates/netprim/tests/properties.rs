//! Property-based tests for the address algebra every engine builds on.

use netprim::{IpRange, Ipv4, PortRange, Prefix};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ipv4> {
    any::<u32>().prop_map(Ipv4)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::containing(Ipv4(addr), len).unwrap())
}

fn arb_range() -> impl Strategy<Value = IpRange> {
    (any::<u32>(), any::<u32>()).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        IpRange::new(Ipv4(lo), Ipv4(hi)).unwrap()
    })
}

proptest! {
    #[test]
    fn ip_display_parse_round_trip(ip in arb_ip()) {
        let back: Ipv4 = ip.to_string().parse().unwrap();
        prop_assert_eq!(ip, back);
    }

    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_iff_range_contains(p in arb_prefix(), ip in arb_ip()) {
        prop_assert_eq!(p.contains(ip), p.range().contains(ip));
    }

    #[test]
    fn prefix_size_matches_range(p in arb_prefix()) {
        prop_assert_eq!(p.size(), p.range().size());
        prop_assert!(p.first() <= p.last());
    }

    #[test]
    fn containment_is_transitive(a in arb_prefix(), b in arb_prefix(), c in arb_prefix()) {
        if a.contains_prefix(b) && b.contains_prefix(c) {
            prop_assert!(a.contains_prefix(c));
        }
    }

    #[test]
    fn proper_prefixes_never_partially_overlap(a in arb_prefix(), b in arb_prefix()) {
        // For CIDR prefixes: either disjoint or one contains the other.
        let i = a.range().intersect(b.range());
        match i {
            None => prop_assert!(!a.overlaps(b)),
            Some(_) => prop_assert!(a.contains_prefix(b) || b.contains_prefix(a)),
        }
    }

    #[test]
    fn children_partition_parent(p in arb_prefix()) {
        if let Some((l, r)) = p.children() {
            prop_assert_eq!(l.parent().unwrap(), p);
            prop_assert_eq!(r.parent().unwrap(), p);
            prop_assert_eq!(l.size() + r.size(), p.size());
            prop_assert!(!l.overlaps(r));
            prop_assert_eq!(l.first(), p.first());
            prop_assert_eq!(r.last(), p.last());
        }
    }

    #[test]
    fn range_to_prefixes_is_exact_cover(r in arb_range()) {
        let prefixes = r.to_prefixes();
        // Contiguous, in order, exactly covering the range.
        let mut cursor = r.start();
        for p in &prefixes {
            prop_assert_eq!(p.first(), cursor);
            cursor = p.last().saturating_next();
        }
        if r.end() != Ipv4::MAX {
            prop_assert_eq!(cursor, r.end().checked_next().unwrap());
        } else {
            prop_assert_eq!(cursor, Ipv4::MAX);
        }
        let total: u64 = prefixes.iter().map(|p| p.size()).sum();
        prop_assert_eq!(total, r.size());
        // Minimality bound: a range decomposes into at most 62 prefixes.
        prop_assert!(prefixes.len() <= 62);
    }

    #[test]
    fn subtract_then_sum_sizes(a in arb_range(), b in arb_range()) {
        let parts = a.subtract(b);
        let cut = a.intersect(b).map_or(0, |i| i.size());
        let total: u64 = parts.iter().map(|p| p.size()).sum();
        prop_assert_eq!(total + cut, a.size());
        for p in &parts {
            prop_assert!(a.contains_range(*p));
            prop_assert!(p.intersect(b).is_none());
        }
    }

    #[test]
    fn intersect_commutes_and_is_contained(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains_range(i));
            prop_assert!(b.contains_range(i));
        }
    }

    #[test]
    fn port_range_intersection(a in any::<(u16, u16)>(), b in any::<(u16, u16)>()) {
        let mk = |(x, y): (u16, u16)| {
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            PortRange::new(lo, hi).unwrap()
        };
        let (ra, rb) = (mk(a), mk(b));
        match ra.intersect(rb) {
            Some(i) => {
                prop_assert!(ra.contains_range(i) && rb.contains_range(i));
                prop_assert!(ra.overlaps(rb));
            }
            None => prop_assert!(!ra.overlaps(rb)),
        }
    }

    #[test]
    fn wire_round_trip_random_tables(
        entries in proptest::collection::vec(
            (arb_prefix(), proptest::collection::vec(any::<u32>(), 0..6)),
            0..40,
        ),
        device in any::<u32>(),
    ) {
        use netprim::wire::{WireEntry, WireSnapshot};
        let snapshot = WireSnapshot {
            device,
            entries: entries
                .into_iter()
                .map(|(prefix, hops)| WireEntry {
                    prefix,
                    next_hops: hops.into_iter().map(Ipv4).collect(),
                })
                .collect(),
        };
        let bytes = snapshot.encode();
        let back = WireSnapshot::decode(&bytes).unwrap();
        prop_assert_eq!(snapshot, back);
    }
}
