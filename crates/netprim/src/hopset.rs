//! Fixed-width bitset over a device-local next-hop universe.
//!
//! Next-hop sets on a datacenter device are tiny relative to the
//! address space: a device can only forward to its physical neighbors,
//! so the universe of possible hops is bounded by its port count
//! (≤ a few hundred even on a dense spine). [`HopSet`] exploits this:
//! assign each neighbor address a small integer (its rank in the
//! device's sorted neighbor table) and represent a hop set as a
//! 512-bit mask. Set equality is then an 8-word compare, membership a
//! shift-and-mask, and union/intersection/subset are word-parallel —
//! the SIMD-friendly core of both the trie engine's expectation
//! matching and bgpsim's FIB interning.
//!
//! Bit positions are meaningful only relative to one device's neighbor
//! table; sets from different devices must never be mixed. Callers
//! with a universe larger than [`HopSet::CAPACITY`] fall back to the
//! explicit `Vec<Ipv4>` representation.

/// Number of `u64` words in a [`HopSet`].
pub const HOPSET_WORDS: usize = 8;

/// A fixed-width 512-bit set of next-hop indices.
///
/// `Copy` and exactly 64 bytes (one cache line), so it can live inline
/// in per-prefix relaxation state and be compared or hashed without
/// touching the heap.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct HopSet {
    words: [u64; HOPSET_WORDS],
}

impl std::hash::Hash for HopSet {
    /// Feed one folded word to the hasher instead of all eight.
    ///
    /// Hop sets sit on bgpsim's FIB-interning hot path (~one probe per
    /// (device, prefix) pair), where the derived implementation would
    /// push 64 bytes through SipHash per probe. Folding is sound
    /// because equal sets fold to the same word (`Eq` still compares
    /// every word); the per-word rotation keeps sets that differ only
    /// in which word a bit lands in from colliding.
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut folded: u64 = 0;
        for (i, &w) in self.words.iter().enumerate() {
            folded ^= w.rotate_left(i as u32 * 8);
        }
        state.write_u64(folded);
    }
}

impl HopSet {
    /// Largest universe this set can represent.
    pub const CAPACITY: usize = HOPSET_WORDS * 64;

    /// The empty set.
    #[inline]
    pub fn new() -> HopSet {
        HopSet::default()
    }

    /// Build a set from bit indices. Panics if any index is out of
    /// range (a universe-sizing bug, not a data condition).
    pub fn from_bits(bits: impl IntoIterator<Item = u16>) -> HopSet {
        let mut s = HopSet::new();
        for b in bits {
            s.insert(b);
        }
        s
    }

    /// Insert a bit; returns `true` if it was newly set. Panics if
    /// `bit >= CAPACITY`.
    #[inline]
    pub fn insert(&mut self, bit: u16) -> bool {
        let (w, m) = (bit as usize / 64, 1u64 << (bit % 64));
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        fresh
    }

    /// Remove a bit (no-op when absent). Panics if `bit >= CAPACITY`.
    #[inline]
    pub fn remove(&mut self, bit: u16) {
        self.words[bit as usize / 64] &= !(1u64 << (bit % 64));
    }

    /// Membership test. Panics if `bit >= CAPACITY`.
    #[inline]
    pub fn contains(&self, bit: u16) -> bool {
        self.words[bit as usize / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Reset to the empty set.
    #[inline]
    pub fn clear(&mut self) {
        self.words = [0; HOPSET_WORDS];
    }

    /// Population count.
    #[inline]
    pub fn len(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-parallel union in place.
    #[inline]
    pub fn union_with(&mut self, other: &HopSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Word-parallel intersection.
    #[inline]
    pub fn intersection(&self, other: &HopSet) -> HopSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        out
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset_of(&self, other: &HopSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Keep only the `k` lowest set bits (ECMP-width truncation: bit
    /// order is neighbor-address order, so this keeps the `k` smallest
    /// addresses, matching the sorted-`Vec` `truncate` it replaces).
    pub fn truncate(&mut self, k: u32) {
        let mut remaining = k;
        for w in &mut self.words {
            let ones = w.count_ones();
            if ones <= remaining {
                remaining -= ones;
            } else {
                // Keep the lowest `remaining` set bits of this word,
                // clear everything above and all later words.
                let mut kept = *w;
                for _ in 0..remaining {
                    kept &= kept - 1; // drop lowest set bit
                }
                *w &= !kept;
                remaining = 0;
            }
        }
    }

    /// Iterate set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors(
                (word != 0).then_some(word),
                |w| {
                    let next = w & (w - 1);
                    (next != 0).then_some(next)
                },
            )
            .map(move |w| (wi * 64 + w.trailing_zeros() as usize) as u16)
        })
    }
}

impl std::fmt::Debug for HopSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u16> for HopSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> HopSet {
        HopSet::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = HopSet::new();
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(!s.insert(0), "second insert reports already-present");
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(511));
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64) && s.contains(511));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let bits = [0u16, 3, 63, 64, 65, 130, 400, 511];
        let s: HopSet = bits.iter().copied().collect();
        let got: Vec<u16> = s.iter().collect();
        assert_eq!(got, bits);
    }

    #[test]
    fn set_algebra() {
        let a: HopSet = [1u16, 2, 3, 100].into_iter().collect();
        let b: HopSet = [2u16, 3, 200].into_iter().collect();
        let i = a.intersection(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u.len(), 5);
        assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
    }

    #[test]
    fn truncate_keeps_lowest_bits() {
        let bits = [5u16, 70, 130, 131, 300];
        let mut s: HopSet = bits.iter().copied().collect();
        s.truncate(3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 70, 130]);
        let mut s: HopSet = bits.iter().copied().collect();
        s.truncate(0);
        assert!(s.is_empty());
        let mut s: HopSet = bits.iter().copied().collect();
        s.truncate(99);
        assert_eq!(s.len(), 5, "truncating past len is a no-op");
    }

    #[test]
    fn equality_and_hash_follow_contents() {
        use std::collections::HashMap;
        let a: HopSet = [9u16, 400].into_iter().collect();
        let mut b = HopSet::new();
        b.insert(400);
        b.insert(9);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, 7u32);
        assert_eq!(m.get(&b), Some(&7));
    }
}
