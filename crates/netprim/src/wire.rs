//! Compact binary codec for pulled routing tables.
//!
//! RCDC's routing-table puller fetches FIBs from every device and parks
//! them in a store before validation (paper §2.6.1). This module defines
//! the transfer format used between the puller and the validator in our
//! reproduction: a length-prefixed list of `(prefix, next-hops)` entries.
//!
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic   : b"FIB1"
//! device  : u32   (device id the snapshot came from)
//! count   : u32   (number of entries)
//! entry   : addr u32 | len u8 | nhops u16 | nhop u32 * nhops
//! ```
//!
//! All integers are big-endian.

use crate::error::ParseError;
use crate::ip::Ipv4;
use crate::prefix::Prefix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a FIB snapshot, version 1.
pub const MAGIC: &[u8; 4] = b"FIB1";

/// One routing entry in the transfer format: destination prefix plus
/// the resolved set of next-hop addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop addresses, in device order.
    pub next_hops: Vec<Ipv4>,
}

/// A full FIB snapshot pulled from one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Numeric id of the source device.
    pub device: u32,
    /// Routing entries; order is preserved by the codec.
    pub entries: Vec<WireEntry>,
}

impl WireSnapshot {
    /// Serialize the snapshot into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + self.entries.len() * 16);
        buf.put_slice(MAGIC);
        buf.put_u32(self.device);
        buf.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u32(e.prefix.addr().0);
            buf.put_u8(e.prefix.len());
            buf.put_u16(e.next_hops.len() as u16);
            for nh in &e.next_hops {
                buf.put_u32(nh.0);
            }
        }
        buf.freeze()
    }

    /// Decode a snapshot, validating magic, lengths, and prefix
    /// canonicality. Trailing bytes are rejected.
    pub fn decode(mut buf: &[u8]) -> Result<WireSnapshot, ParseError> {
        let err = |reason: &str| ParseError::new("fib snapshot", "<binary>", reason);
        if buf.remaining() < 12 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("bad magic"));
        }
        let device = buf.get_u32();
        let count = buf.get_u32() as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 7 {
                return Err(err("truncated entry header"));
            }
            let addr = Ipv4(buf.get_u32());
            let len = buf.get_u8();
            let nh_count = buf.get_u16() as usize;
            if buf.remaining() < nh_count * 4 {
                return Err(err("truncated next-hop list"));
            }
            let prefix = Prefix::new(addr, len)
                .map_err(|e| err(&format!("bad prefix in entry: {e}")))?;
            let mut next_hops = Vec::with_capacity(nh_count);
            for _ in 0..nh_count {
                next_hops.push(Ipv4(buf.get_u32()));
            }
            entries.push(WireEntry { prefix, next_hops });
        }
        if buf.has_remaining() {
            return Err(err("trailing bytes after last entry"));
        }
        Ok(WireSnapshot { device, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> WireSnapshot {
        WireSnapshot {
            device: 42,
            entries: vec![
                WireEntry {
                    prefix: "0.0.0.0/0".parse().unwrap(),
                    next_hops: vec![Ipv4::new(30, 10, 192, 12), Ipv4::new(30, 10, 192, 16)],
                },
                WireEntry {
                    prefix: "10.3.129.224/28".parse().unwrap(),
                    next_hops: vec![Ipv4::new(10, 10, 192, 12)],
                },
                WireEntry {
                    prefix: "10.4.0.0/16".parse().unwrap(),
                    next_hops: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let s = snapshot();
        let bytes = s.encode();
        let back = WireSnapshot::decode(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = WireSnapshot {
            device: 0,
            entries: vec![],
        };
        assert_eq!(WireSnapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = snapshot().encode().to_vec();
        bytes[0] = b'X';
        assert!(WireSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = snapshot().encode().to_vec();
        for cut in 0..bytes.len() {
            assert!(
                WireSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = snapshot().encode().to_vec();
        bytes.push(0);
        assert!(WireSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_noncanonical_prefix() {
        // Hand-build: one entry 10.0.0.1/8 (host bits set).
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32(1);
        buf.put_u32(1);
        buf.put_u32(Ipv4::new(10, 0, 0, 1).0);
        buf.put_u8(8);
        buf.put_u16(0);
        assert!(WireSnapshot::decode(&buf).is_err());
    }
}
