//! Compact binary codec for pulled routing tables.
//!
//! RCDC's routing-table puller fetches FIBs from every device and parks
//! them in a store before validation (paper §2.6.1). This module defines
//! the transfer format used between the puller and the validator in our
//! reproduction: a length-prefixed list of `(prefix, next-hops)` entries.
//!
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic   : b"FIB1"
//! device  : u32   (device id the snapshot came from)
//! count   : u32   (number of entries)
//! entry   : addr u32 | len u8 | nhops u16 | nhop u32 * nhops
//! ```
//!
//! Incremental pulls ship a [`FibDelta`] instead of a full snapshot:
//! only the rules that changed between two table versions, anchored to
//! the content hashes of both versions so a stale or misapplied delta
//! is detected at application time:
//!
//! ```text
//! magic   : b"FIBD"
//! device  : u32
//! base    : u64   (content hash of the table the delta applies to)
//! target  : u64   (content hash of the table after application)
//! n_add   : u32 | rule * n_add      (rules absent from base)
//! n_mod   : u32 | rule * n_mod      (rules present in both, changed)
//! n_rm    : u32 | (addr u32 | len u8) * n_rm
//! rule    : addr u32 | len u8 | flags u8 | nhops u16 | nhop u32 * nhops
//! ```
//!
//! `flags` bit 0 marks a locally originated rule (full snapshots infer
//! locality from an empty next-hop list; deltas carry it explicitly so
//! applying a delta reproduces the target table bit-for-bit).
//!
//! All integers are big-endian.

use crate::error::ParseError;
use crate::ip::Ipv4;
use crate::prefix::Prefix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a FIB snapshot, version 1.
pub const MAGIC: &[u8; 4] = b"FIB1";

/// Magic bytes identifying a FIB delta, version 1.
pub const DELTA_MAGIC: &[u8; 4] = b"FIBD";

/// What kind of frame a byte buffer claims to carry, by magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A full [`WireSnapshot`] (`FIB1`).
    Snapshot,
    /// A [`FibDelta`] (`FIBD`).
    Delta,
}

/// Peek at a frame's magic without decoding it: `Some(kind)` when the
/// buffer starts with a known magic, `None` otherwise (truncated or
/// corrupted framing). Receivers route full snapshots and deltas off
/// one channel with this — and fall back to requesting a full snapshot
/// when corruption makes the frame unrecognizable.
pub fn frame_kind(buf: &[u8]) -> Option<FrameKind> {
    match buf.get(..4) {
        Some(m) if m == MAGIC => Some(FrameKind::Snapshot),
        Some(m) if m == DELTA_MAGIC => Some(FrameKind::Delta),
        _ => None,
    }
}

/// One routing entry in the transfer format: destination prefix plus
/// the resolved set of next-hop addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop addresses, in device order.
    pub next_hops: Vec<Ipv4>,
}

/// A full FIB snapshot pulled from one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Numeric id of the source device.
    pub device: u32,
    /// Routing entries; order is preserved by the codec.
    pub entries: Vec<WireEntry>,
}

impl WireSnapshot {
    /// Serialize the snapshot into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + self.entries.len() * 16);
        buf.put_slice(MAGIC);
        buf.put_u32(self.device);
        buf.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u32(e.prefix.addr().0);
            buf.put_u8(e.prefix.len());
            buf.put_u16(e.next_hops.len() as u16);
            for nh in &e.next_hops {
                buf.put_u32(nh.0);
            }
        }
        buf.freeze()
    }

    /// Decode a snapshot, validating magic, lengths, and prefix
    /// canonicality. Trailing bytes are rejected.
    pub fn decode(mut buf: &[u8]) -> Result<WireSnapshot, ParseError> {
        let err = |reason: &str| ParseError::new("fib snapshot", "<binary>", reason);
        if buf.remaining() < 12 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("bad magic"));
        }
        let device = buf.get_u32();
        let count = buf.get_u32() as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 7 {
                return Err(err("truncated entry header"));
            }
            let addr = Ipv4(buf.get_u32());
            let len = buf.get_u8();
            let nh_count = buf.get_u16() as usize;
            if buf.remaining() < nh_count * 4 {
                return Err(err("truncated next-hop list"));
            }
            let prefix = Prefix::new(addr, len)
                .map_err(|e| err(&format!("bad prefix in entry: {e}")))?;
            let mut next_hops = Vec::with_capacity(nh_count);
            for _ in 0..nh_count {
                next_hops.push(Ipv4(buf.get_u32()));
            }
            entries.push(WireEntry { prefix, next_hops });
        }
        if buf.has_remaining() {
            return Err(err("trailing bytes after last entry"));
        }
        Ok(WireSnapshot { device, entries })
    }
}

/// One changed rule inside a [`FibDelta`]: the rule's new contents.
///
/// Unlike [`WireEntry`], locality is carried explicitly (the `flags`
/// byte on the wire) so delta application is lossless even for locally
/// originated rules that happen to have next hops recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRule {
    /// Destination prefix of the rule.
    pub prefix: Prefix,
    /// The rule's (new) next-hop addresses.
    pub next_hops: Vec<Ipv4>,
    /// The rule is locally originated.
    pub local: bool,
}

/// The difference between two FIB snapshots of one device.
///
/// Anchored by content hashes on both sides: `base_hash` names the
/// table the delta applies to and `new_hash` the table that applying it
/// must produce, so stale deltas are rejected instead of silently
/// corrupting the store (§2.6.1's pipeline pulls continuously; a device
/// can republish between pull and apply).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FibDelta {
    /// Numeric id of the source device.
    pub device: u32,
    /// Content hash of the base table.
    pub base_hash: u64,
    /// Content hash of the table after application.
    pub new_hash: u64,
    /// Rules present only in the new table.
    pub added: Vec<DeltaRule>,
    /// Rules present in both tables whose next hops or locality changed.
    pub modified: Vec<DeltaRule>,
    /// Prefixes whose rules exist only in the base table.
    pub removed: Vec<Prefix>,
}

impl FibDelta {
    /// True when the two tables are identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed rules.
    pub fn rule_count(&self) -> usize {
        self.added.len() + self.modified.len() + self.removed.len()
    }

    /// Every prefix the delta touches (added, modified, or removed) —
    /// the input to contract-affectedness tests in incremental
    /// revalidation.
    pub fn touched_prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.added
            .iter()
            .chain(&self.modified)
            .map(|r| r.prefix)
            .chain(self.removed.iter().copied())
    }

    /// Serialize the delta into a freshly allocated buffer.
    pub fn encode(&self) -> Bytes {
        let rules = self.added.len() + self.modified.len();
        let mut buf = BytesMut::with_capacity(36 + rules * 16 + self.removed.len() * 5);
        buf.put_slice(DELTA_MAGIC);
        buf.put_u32(self.device);
        buf.put_u64(self.base_hash);
        buf.put_u64(self.new_hash);
        for rules in [&self.added, &self.modified] {
            buf.put_u32(rules.len() as u32);
            for r in rules {
                buf.put_u32(r.prefix.addr().0);
                buf.put_u8(r.prefix.len());
                buf.put_u8(u8::from(r.local));
                buf.put_u16(r.next_hops.len() as u16);
                for nh in &r.next_hops {
                    buf.put_u32(nh.0);
                }
            }
        }
        buf.put_u32(self.removed.len() as u32);
        for p in &self.removed {
            buf.put_u32(p.addr().0);
            buf.put_u8(p.len());
        }
        buf.freeze()
    }

    /// Decode a delta, validating magic, lengths, and prefix
    /// canonicality. Trailing bytes are rejected.
    pub fn decode(mut buf: &[u8]) -> Result<FibDelta, ParseError> {
        let err = |reason: &str| ParseError::new("fib delta", "<binary>", reason);
        if buf.remaining() < 24 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != DELTA_MAGIC {
            return Err(err("bad magic"));
        }
        let device = buf.get_u32();
        let base_hash = buf.get_u64();
        let new_hash = buf.get_u64();
        let mut rule_lists = [Vec::new(), Vec::new()];
        for rules in &mut rule_lists {
            if buf.remaining() < 4 {
                return Err(err("truncated rule count"));
            }
            let count = buf.get_u32() as usize;
            rules.reserve(count.min(1 << 20));
            for _ in 0..count {
                if buf.remaining() < 8 {
                    return Err(err("truncated rule header"));
                }
                let addr = Ipv4(buf.get_u32());
                let len = buf.get_u8();
                let flags = buf.get_u8();
                if flags > 1 {
                    return Err(err("unknown rule flags"));
                }
                let nh_count = buf.get_u16() as usize;
                if buf.remaining() < nh_count * 4 {
                    return Err(err("truncated next-hop list"));
                }
                let prefix = Prefix::new(addr, len)
                    .map_err(|e| err(&format!("bad prefix in rule: {e}")))?;
                let mut next_hops = Vec::with_capacity(nh_count);
                for _ in 0..nh_count {
                    next_hops.push(Ipv4(buf.get_u32()));
                }
                rules.push(DeltaRule {
                    prefix,
                    next_hops,
                    local: flags & 1 == 1,
                });
            }
        }
        let [added, modified] = rule_lists;
        if buf.remaining() < 4 {
            return Err(err("truncated removal count"));
        }
        let count = buf.get_u32() as usize;
        let mut removed = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 5 {
                return Err(err("truncated removal"));
            }
            let addr = Ipv4(buf.get_u32());
            let len = buf.get_u8();
            removed.push(
                Prefix::new(addr, len).map_err(|e| err(&format!("bad removed prefix: {e}")))?,
            );
        }
        if buf.has_remaining() {
            return Err(err("trailing bytes after last removal"));
        }
        Ok(FibDelta {
            device,
            base_hash,
            new_hash,
            added,
            modified,
            removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> WireSnapshot {
        WireSnapshot {
            device: 42,
            entries: vec![
                WireEntry {
                    prefix: "0.0.0.0/0".parse().unwrap(),
                    next_hops: vec![Ipv4::new(30, 10, 192, 12), Ipv4::new(30, 10, 192, 16)],
                },
                WireEntry {
                    prefix: "10.3.129.224/28".parse().unwrap(),
                    next_hops: vec![Ipv4::new(10, 10, 192, 12)],
                },
                WireEntry {
                    prefix: "10.4.0.0/16".parse().unwrap(),
                    next_hops: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let s = snapshot();
        let bytes = s.encode();
        let back = WireSnapshot::decode(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = WireSnapshot {
            device: 0,
            entries: vec![],
        };
        assert_eq!(WireSnapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = snapshot().encode().to_vec();
        bytes[0] = b'X';
        assert!(WireSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = snapshot().encode().to_vec();
        for cut in 0..bytes.len() {
            assert!(
                WireSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = snapshot().encode().to_vec();
        bytes.push(0);
        assert!(WireSnapshot::decode(&bytes).is_err());
    }

    fn delta() -> FibDelta {
        FibDelta {
            device: 42,
            base_hash: 0xDEAD_BEEF_0BAD_F00D,
            new_hash: 0x1234_5678_9ABC_DEF0,
            added: vec![DeltaRule {
                prefix: "10.3.129.224/28".parse().unwrap(),
                next_hops: vec![Ipv4::new(10, 10, 192, 12), Ipv4::new(10, 10, 192, 16)],
                local: false,
            }],
            modified: vec![
                DeltaRule {
                    prefix: "0.0.0.0/0".parse().unwrap(),
                    next_hops: vec![Ipv4::new(30, 10, 192, 12)],
                    local: false,
                },
                DeltaRule {
                    prefix: "10.4.0.0/16".parse().unwrap(),
                    next_hops: vec![],
                    local: true,
                },
            ],
            removed: vec!["10.9.0.0/16".parse().unwrap()],
        }
    }

    #[test]
    fn delta_round_trip() {
        let d = delta();
        assert_eq!(FibDelta::decode(&d.encode()).unwrap(), d);
        assert_eq!(d.rule_count(), 4);
        assert_eq!(d.touched_prefixes().count(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_delta_round_trips() {
        let d = FibDelta {
            device: 7,
            base_hash: 1,
            new_hash: 1,
            ..FibDelta::default()
        };
        assert_eq!(FibDelta::decode(&d.encode()).unwrap(), d);
        assert!(d.is_empty());
    }

    #[test]
    fn delta_rejects_truncation_everywhere() {
        let bytes = delta().encode().to_vec();
        for cut in 0..bytes.len() {
            assert!(
                FibDelta::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn delta_rejects_bad_magic_and_trailing_bytes() {
        let mut bytes = delta().encode().to_vec();
        bytes[3] = b'X';
        assert!(FibDelta::decode(&bytes).is_err());
        let mut bytes = delta().encode().to_vec();
        bytes.push(0);
        assert!(FibDelta::decode(&bytes).is_err());
        // A snapshot is not a delta.
        assert!(FibDelta::decode(&snapshot().encode()).is_err());
    }

    #[test]
    fn delta_rejects_unknown_flags() {
        let mut bytes = delta().encode().to_vec();
        // First rule's flags byte: magic(4) + device(4) + hashes(16) +
        // add count(4) + addr(4) + len(1) = offset 33.
        bytes[33] = 0x80;
        assert!(FibDelta::decode(&bytes).is_err());
    }

    #[test]
    fn frame_kind_peeks_magic() {
        assert_eq!(frame_kind(&snapshot().encode()), Some(FrameKind::Snapshot));
        assert_eq!(frame_kind(&delta().encode()), Some(FrameKind::Delta));
        assert_eq!(frame_kind(b"FIB"), None); // truncated magic
        assert_eq!(frame_kind(b""), None);
        let mut corrupt = delta().encode().to_vec();
        corrupt[0] ^= 0xFF;
        assert_eq!(frame_kind(&corrupt), None);
    }

    #[test]
    fn rejects_noncanonical_prefix() {
        // Hand-build: one entry 10.0.0.1/8 (host bits set).
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32(1);
        buf.put_u32(1);
        buf.put_u32(Ipv4::new(10, 0, 0, 1).0);
        buf.put_u8(8);
        buf.put_u16(0);
        assert!(WireSnapshot::decode(&buf).is_err());
    }
}
