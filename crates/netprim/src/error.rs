//! Parse errors for the textual network formats accepted by this crate.

use std::fmt;

/// An error produced while parsing an address, prefix, port, protocol,
/// or any of the higher-level policy syntaxes built on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was being parsed (e.g. `"ipv4 address"`, `"prefix"`).
    pub what: &'static str,
    /// The offending input, truncated for display.
    pub input: String,
    /// Human-readable reason.
    pub reason: String,
}

impl ParseError {
    /// Create a new parse error.
    pub fn new(what: &'static str, input: impl Into<String>, reason: impl Into<String>) -> Self {
        let mut input = input.into();
        if input.len() > 64 {
            input.truncate(64);
            input.push('…');
        }
        ParseError {
            what,
            input,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} {:?}: {}",
            self.what, self.input, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ParseError::new("prefix", "10.0.0.0/33", "mask length exceeds 32");
        let s = e.to_string();
        assert!(s.contains("prefix"));
        assert!(s.contains("10.0.0.0/33"));
        assert!(s.contains("exceeds"));
    }

    #[test]
    fn long_input_is_truncated() {
        let long = "x".repeat(200);
        let e = ParseError::new("acl rule", long, "nonsense");
        assert!(e.input.chars().count() <= 65);
        assert!(e.input.ends_with('…'));
    }
}
