//! # netprim — network primitives for datacenter validation
//!
//! Foundational types shared by every crate in this workspace:
//!
//! * [`Ipv4`] — a 32-bit IPv4 address with parsing/formatting.
//! * [`Prefix`] — a CIDR prefix (`10.3.129.224/28`) in canonical form.
//! * [`IpRange`] / [`PortRange`] — inclusive ranges used by ACL rules
//!   and by the interval-analysis baseline engine.
//! * [`Protocol`] — IP protocol numbers with the names used in
//!   Cisco-IOS-style ACL syntax.
//! * [`HeaderTuple`] and [`HeaderSpace`] — the 5-tuple
//!   `(srcIp, srcPort, dstIp, dstPort, protocol)` over which SecGuru
//!   policies and contracts are interpreted (paper §3.2).
//! * [`HopSet`] — a fixed-width bitset over a device-local next-hop
//!   universe; the SIMD-friendly set algebra behind the trie engine's
//!   expectation matching and bgpsim's FIB interning.
//! * [`wire`] — a compact binary codec for pulled routing tables,
//!   modeling the FIB transfer from device to validator (paper §2.6.1).
//!
//! All types are plain data with value semantics; nothing here
//! allocates on the hot path of a validation check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod header;
pub mod hopset;
pub mod ip;
pub mod prefix;
pub mod range;
pub mod wire;

pub use error::ParseError;
pub use header::{HeaderSpace, HeaderTuple, Protocol};
pub use hopset::HopSet;
pub use ip::Ipv4;
pub use prefix::Prefix;
pub use range::{IpRange, PortRange};
