//! Packet headers and header spaces.
//!
//! SecGuru interprets policies over the 5-tuple
//! `⟨srcIp, srcPort, dstIp, dstPort, protocol⟩` (paper §3.2). A
//! [`HeaderTuple`] is one concrete packet header; a [`HeaderSpace`] is a
//! rectangular set of headers — the packet filter of one ACL/NSG rule
//! or one contract.

use crate::error::ParseError;
use crate::ip::Ipv4;
use crate::prefix::Prefix;
use crate::range::{IpRange, PortRange};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// IP protocol selector for a rule.
///
/// `Any` is the wildcard (Cisco `ip`, NSG `Any`); the named variants
/// carry their IANA protocol numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Matches every protocol number.
    Any,
    /// ICMP, protocol 1.
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// An explicit protocol number (e.g. `53`, `55` in edge ACLs, §3.1).
    Number(u8),
}

impl Protocol {
    /// The protocol number, or `None` for the wildcard.
    pub const fn number(self) -> Option<u8> {
        match self {
            Protocol::Any => None,
            Protocol::Icmp => Some(1),
            Protocol::Tcp => Some(6),
            Protocol::Udp => Some(17),
            Protocol::Number(n) => Some(n),
        }
    }

    /// Does this selector match a concrete protocol number?
    pub const fn matches(self, proto: u8) -> bool {
        match self.number() {
            None => true,
            Some(n) => n == proto,
        }
    }

    /// Canonicalize: named variants for 1/6/17, `Number` otherwise.
    pub const fn canonical(self) -> Protocol {
        match self.number() {
            None => Protocol::Any,
            Some(1) => Protocol::Icmp,
            Some(6) => Protocol::Tcp,
            Some(17) => Protocol::Udp,
            Some(n) => Protocol::Number(n),
        }
    }

    /// Is this a protocol that carries ports (TCP/UDP)?
    pub const fn has_ports(self) -> bool {
        matches!(self.number(), Some(6) | Some(17) | None)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Any => write!(f, "ip"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Number(n) => write!(f, "{n}"),
        }
    }
}

impl FromStr for Protocol {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ip" | "any" | "*" => Ok(Protocol::Any),
            "icmp" => Ok(Protocol::Icmp),
            "tcp" => Ok(Protocol::Tcp),
            "udp" => Ok(Protocol::Udp),
            other => other
                .parse::<u8>()
                .map(|n| Protocol::Number(n).canonical())
                .map_err(|_| ParseError::new("protocol", s, "unknown protocol name")),
        }
    }
}

/// One concrete packet header: the 5-tuple SecGuru reasons over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeaderTuple {
    /// Source IP address.
    pub src_ip: Ipv4,
    /// Source transport port.
    pub src_port: u16,
    /// Destination IP address.
    pub dst_ip: Ipv4,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl fmt::Display for HeaderTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

/// A rectangular set of headers: the packet filter of one rule or
/// contract. Each dimension is an independent range; a header is in
/// the space iff every dimension matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeaderSpace {
    /// Permissible source addresses.
    pub src: IpRange,
    /// Permissible source ports.
    pub src_ports: PortRange,
    /// Permissible destination addresses.
    pub dst: IpRange,
    /// Permissible destination ports.
    pub dst_ports: PortRange,
    /// Protocol selector.
    pub protocol: Protocol,
}

impl HeaderSpace {
    /// The full header space — every packet.
    pub const ALL: HeaderSpace = HeaderSpace {
        src: IpRange::ALL,
        src_ports: PortRange::ALL,
        dst: IpRange::ALL,
        dst_ports: PortRange::ALL,
        protocol: Protocol::Any,
    };

    /// All traffic to a destination prefix, any ports/protocol.
    pub fn to_dst(prefix: Prefix) -> Self {
        HeaderSpace {
            dst: prefix.range(),
            ..HeaderSpace::ALL
        }
    }

    /// All traffic from a source prefix, any ports/protocol.
    pub fn from_src(prefix: Prefix) -> Self {
        HeaderSpace {
            src: prefix.range(),
            ..HeaderSpace::ALL
        }
    }

    /// Does this space contain the given concrete header?
    pub fn contains(&self, h: &HeaderTuple) -> bool {
        self.src.contains(h.src_ip)
            && self.src_ports.contains(h.src_port)
            && self.dst.contains(h.dst_ip)
            && self.dst_ports.contains(h.dst_port)
            && self.protocol.matches(h.protocol)
    }

    /// Is every header of `other` inside `self`?
    pub fn contains_space(&self, other: &HeaderSpace) -> bool {
        let proto_ok = match (self.protocol.number(), other.protocol.number()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a == b,
        };
        proto_ok
            && self.src.contains_range(other.src)
            && self.src_ports.contains_range(other.src_ports)
            && self.dst.contains_range(other.dst)
            && self.dst_ports.contains_range(other.dst_ports)
    }

    /// The intersection of two spaces, if non-empty. Rectangles are
    /// closed under intersection, which is what makes the interval
    /// baseline engine complete.
    pub fn intersect(&self, other: &HeaderSpace) -> Option<HeaderSpace> {
        let protocol = match (self.protocol.number(), other.protocol.number()) {
            (None, _) => other.protocol,
            (_, None) => self.protocol,
            (Some(a), Some(b)) if a == b => self.protocol,
            _ => return None,
        };
        Some(HeaderSpace {
            src: self.src.intersect(other.src)?,
            src_ports: self.src_ports.intersect(other.src_ports)?,
            dst: self.dst.intersect(other.dst)?,
            dst_ports: self.dst_ports.intersect(other.dst_ports)?,
            protocol,
        })
    }

    /// Number of concrete headers in this space, as u128 (the full
    /// space holds 2^104 headers when the protocol is a wildcard).
    pub fn size(&self) -> u128 {
        let proto = match self.protocol.number() {
            None => 256u128,
            Some(_) => 1,
        };
        self.src.size() as u128
            * self.src_ports.size() as u128
            * self.dst.size() as u128
            * self.dst_ports.size() as u128
            * proto
    }

    /// An arbitrary concrete header inside the space (its lowest corner).
    pub fn sample(&self) -> HeaderTuple {
        HeaderTuple {
            src_ip: self.src.start(),
            src_port: self.src_ports.start(),
            dst_ip: self.dst.start(),
            dst_port: self.dst_ports.start(),
            protocol: self.protocol.number().unwrap_or(0),
        }
    }
}

impl fmt::Display for HeaderSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} src {} ports {} -> dst {} ports {}",
            self.protocol, self.src, self.src_ports, self.dst, self.dst_ports
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(dst: &str) -> HeaderSpace {
        HeaderSpace::to_dst(dst.parse().unwrap())
    }

    #[test]
    fn protocol_numbers_and_parsing() {
        assert_eq!("ip".parse::<Protocol>().unwrap(), Protocol::Any);
        assert_eq!("tcp".parse::<Protocol>().unwrap(), Protocol::Tcp);
        assert_eq!("udp".parse::<Protocol>().unwrap(), Protocol::Udp);
        assert_eq!("icmp".parse::<Protocol>().unwrap(), Protocol::Icmp);
        assert_eq!("53".parse::<Protocol>().unwrap(), Protocol::Number(53));
        // Numeric aliases canonicalize to the named variants.
        assert_eq!("6".parse::<Protocol>().unwrap(), Protocol::Tcp);
        assert_eq!("17".parse::<Protocol>().unwrap(), Protocol::Udp);
        assert_eq!("1".parse::<Protocol>().unwrap(), Protocol::Icmp);
        assert!("bogus".parse::<Protocol>().is_err());
        assert!("300".parse::<Protocol>().is_err());
    }

    #[test]
    fn protocol_matching() {
        assert!(Protocol::Any.matches(6));
        assert!(Protocol::Any.matches(200));
        assert!(Protocol::Tcp.matches(6));
        assert!(!Protocol::Tcp.matches(17));
        assert!(Protocol::Number(53).matches(53));
    }

    #[test]
    fn header_membership() {
        let s = space("10.0.0.0/8");
        let inside = HeaderTuple {
            src_ip: Ipv4::new(1, 2, 3, 4),
            src_port: 1000,
            dst_ip: Ipv4::new(10, 200, 0, 1),
            dst_port: 443,
            protocol: 6,
        };
        let outside = HeaderTuple {
            dst_ip: Ipv4::new(11, 0, 0, 1),
            ..inside
        };
        assert!(s.contains(&inside));
        assert!(!s.contains(&outside));
    }

    #[test]
    fn space_containment() {
        let big = space("10.0.0.0/8");
        let small = space("10.20.0.0/16");
        assert!(big.contains_space(&small));
        assert!(!small.contains_space(&big));
        assert!(HeaderSpace::ALL.contains_space(&big));
        // A wildcard-protocol space is not contained in a TCP-only one.
        let tcp_only = HeaderSpace {
            protocol: Protocol::Tcp,
            ..big
        };
        assert!(!tcp_only.contains_space(&big));
        assert!(big.contains_space(&tcp_only));
    }

    #[test]
    fn space_intersection() {
        let a = HeaderSpace {
            protocol: Protocol::Tcp,
            dst_ports: PortRange::new(0, 1023).unwrap(),
            ..HeaderSpace::ALL
        };
        let b = HeaderSpace {
            protocol: Protocol::Any,
            dst_ports: PortRange::new(400, 500).unwrap(),
            ..space("10.0.0.0/8")
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.protocol, Protocol::Tcp);
        assert_eq!(i.dst_ports, PortRange::new(400, 500).unwrap());
        assert_eq!(i.dst, "10.0.0.0/8".parse::<Prefix>().unwrap().range());

        let udp = HeaderSpace {
            protocol: Protocol::Udp,
            ..HeaderSpace::ALL
        };
        assert!(a.intersect(&udp).is_none());
    }

    #[test]
    fn size_of_full_space() {
        assert_eq!(HeaderSpace::ALL.size(), 1u128 << 104);
        let single = HeaderSpace {
            src: IpRange::single(Ipv4::ZERO),
            src_ports: PortRange::single(1),
            dst: IpRange::single(Ipv4::ZERO),
            dst_ports: PortRange::single(2),
            protocol: Protocol::Tcp,
        };
        assert_eq!(single.size(), 1);
    }

    #[test]
    fn sample_is_member() {
        let s = HeaderSpace {
            protocol: Protocol::Udp,
            ..space("10.3.129.224/28")
        };
        assert!(s.contains(&s.sample()));
    }
}
