//! Inclusive ranges over addresses and ports.
//!
//! ACL rules describe packet sets as products of ranges (paper §3.1:
//! "permissible values for source and destination addresses, source and
//! destination ports, and protocol"). The interval-analysis baseline
//! engine in `secguru` computes over these directly; the SMT engine
//! encodes them as bit-vector comparisons.

use crate::error::ParseError;
use crate::ip::Ipv4;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive range of IPv4 addresses `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpRange {
    start: Ipv4,
    end: Ipv4,
}

impl IpRange {
    /// The full address space `0.0.0.0 - 255.255.255.255`.
    pub const ALL: IpRange = IpRange {
        start: Ipv4::ZERO,
        end: Ipv4::MAX,
    };

    /// Construct a range; errors if `start > end`.
    pub fn new(start: Ipv4, end: Ipv4) -> Result<Self, ParseError> {
        if start > end {
            return Err(ParseError::new(
                "ip range",
                format!("{start}-{end}"),
                "start exceeds end",
            ));
        }
        Ok(IpRange { start, end })
    }

    /// `const` constructor for callers that guarantee `start <= end`
    /// structurally (e.g. [`Prefix::range`]).
    pub const fn new_unchecked(start: Ipv4, end: Ipv4) -> Self {
        IpRange { start, end }
    }

    /// A single-address range.
    pub const fn single(ip: Ipv4) -> Self {
        IpRange { start: ip, end: ip }
    }

    /// First address.
    pub const fn start(self) -> Ipv4 {
        self.start
    }

    /// Last address.
    pub const fn end(self) -> Ipv4 {
        self.end
    }

    /// Number of addresses (up to 2^32, hence `u64`).
    pub const fn size(self) -> u64 {
        (self.end.0 as u64) - (self.start.0 as u64) + 1
    }

    /// Does the range contain this address?
    pub const fn contains(self, ip: Ipv4) -> bool {
        self.start.0 <= ip.0 && ip.0 <= self.end.0
    }

    /// Is `other` fully inside `self`?
    pub const fn contains_range(self, other: IpRange) -> bool {
        self.start.0 <= other.start.0 && other.end.0 <= self.end.0
    }

    /// Do the two ranges share any address?
    pub const fn overlaps(self, other: IpRange) -> bool {
        self.start.0 <= other.end.0 && other.start.0 <= self.end.0
    }

    /// The common sub-range, if any.
    pub fn intersect(self, other: IpRange) -> Option<IpRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(IpRange { start, end })
    }

    /// The addresses of `self` not covered by `other`: zero, one, or
    /// two residual ranges.
    pub fn subtract(self, other: IpRange) -> Vec<IpRange> {
        let mut out = Vec::new();
        let Some(mid) = self.intersect(other) else {
            return vec![self];
        };
        if self.start < mid.start {
            out.push(IpRange {
                start: self.start,
                end: Ipv4(mid.start.0 - 1),
            });
        }
        if mid.end < self.end {
            out.push(IpRange {
                start: Ipv4(mid.end.0 + 1),
                end: self.end,
            });
        }
        out
    }

    /// Decompose the range into the minimal list of CIDR prefixes that
    /// exactly covers it, in address order. Standard greedy alignment
    /// algorithm; used when converting legacy range-based rules into
    /// prefix rules during ACL refactoring.
    pub fn to_prefixes(self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = self.start.0 as u64;
        let end = self.end.0 as u64;
        while cur <= end {
            // Largest block aligned at `cur`…
            let align = if cur == 0 { 32 } else { cur.trailing_zeros().min(32) };
            // …that does not run past `end`.
            let remaining = end - cur + 1;
            let fit = 63 - remaining.leading_zeros(); // floor(log2(remaining))
            let bits = align.min(fit);
            out.push(
                Prefix::new(Ipv4(cur as u32), (32 - bits) as u8)
                    .expect("aligned block is canonical"),
            );
            cur += 1u64 << bits;
        }
        out
    }
}

impl From<Prefix> for IpRange {
    fn from(p: Prefix) -> Self {
        p.range()
    }
}

impl fmt::Display for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

/// An inclusive range of transport-layer ports `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortRange {
    start: u16,
    end: u16,
}

impl PortRange {
    /// All ports, `0-65535` — the meaning of `Any` in NSG rules (§3.1).
    pub const ALL: PortRange = PortRange {
        start: 0,
        end: u16::MAX,
    };

    /// Construct a range; errors if `start > end`.
    pub fn new(start: u16, end: u16) -> Result<Self, ParseError> {
        if start > end {
            return Err(ParseError::new(
                "port range",
                format!("{start}-{end}"),
                "start exceeds end",
            ));
        }
        Ok(PortRange { start, end })
    }

    /// A single port.
    pub const fn single(port: u16) -> Self {
        PortRange {
            start: port,
            end: port,
        }
    }

    /// First port.
    pub const fn start(self) -> u16 {
        self.start
    }

    /// Last port.
    pub const fn end(self) -> u16 {
        self.end
    }

    /// Number of ports covered.
    pub const fn size(self) -> u32 {
        (self.end as u32) - (self.start as u32) + 1
    }

    /// Does the range contain this port?
    pub const fn contains(self, port: u16) -> bool {
        self.start <= port && port <= self.end
    }

    /// Is `other` fully inside `self`?
    pub const fn contains_range(self, other: PortRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Do the two ranges share any port?
    pub const fn overlaps(self, other: PortRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The common sub-range, if any.
    pub fn intersect(self, other: PortRange) -> Option<PortRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(PortRange { start, end })
    }
}

impl fmt::Display for PortRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else if *self == PortRange::ALL {
            write!(f, "any")
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: u32, b: u32) -> IpRange {
        IpRange::new(Ipv4(a), Ipv4(b)).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        assert!(IpRange::new(Ipv4(5), Ipv4(4)).is_err());
        assert!(PortRange::new(100, 99).is_err());
        assert!(IpRange::new(Ipv4(4), Ipv4(4)).is_ok());
    }

    #[test]
    fn sizes() {
        assert_eq!(IpRange::ALL.size(), 1u64 << 32);
        assert_eq!(r(10, 19).size(), 10);
        assert_eq!(PortRange::ALL.size(), 1 << 16);
        assert_eq!(PortRange::single(80).size(), 1);
    }

    #[test]
    fn intersection() {
        assert_eq!(r(0, 10).intersect(r(5, 20)), Some(r(5, 10)));
        assert_eq!(r(0, 10).intersect(r(11, 20)), None);
        assert_eq!(r(0, 10).intersect(r(10, 20)), Some(r(10, 10)));
        assert_eq!(
            PortRange::new(0, 100).unwrap().intersect(PortRange::single(445)),
            None
        );
    }

    #[test]
    fn subtraction_produces_residuals() {
        assert_eq!(r(0, 10).subtract(r(3, 6)), vec![r(0, 2), r(7, 10)]);
        assert_eq!(r(0, 10).subtract(r(0, 10)), vec![]);
        assert_eq!(r(0, 10).subtract(r(0, 4)), vec![r(5, 10)]);
        assert_eq!(r(0, 10).subtract(r(20, 30)), vec![r(0, 10)]);
        assert_eq!(r(0, 10).subtract(IpRange::ALL), vec![]);
    }

    #[test]
    fn prefix_decomposition_exact_block() {
        let q: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(IpRange::from(q).to_prefixes(), vec![q]);
        assert_eq!(IpRange::ALL.to_prefixes(), vec![Prefix::DEFAULT]);
    }

    #[test]
    fn prefix_decomposition_unaligned() {
        // 10.0.0.1 - 10.0.0.6 = /32 + /31 + /31 + /32? No:
        // 1 -> /32, 2-3 -> /31, 4-5 -> /31, 6 -> /32
        let got = r(0x0a000001, 0x0a000006).to_prefixes();
        let expect: Vec<Prefix> = ["10.0.0.1/32", "10.0.0.2/31", "10.0.0.4/31", "10.0.0.6/32"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn prefix_decomposition_covers_exactly() {
        let range = r(0x0a0000fd, 0x0a000203);
        let prefixes = range.to_prefixes();
        let total: u64 = prefixes.iter().map(|p| p.size()).sum();
        assert_eq!(total, range.size());
        // Contiguous and in order.
        let mut cursor = range.start();
        for p in &prefixes {
            assert_eq!(p.first(), cursor);
            cursor = p.last().saturating_next();
        }
        assert_eq!(cursor, range.end().saturating_next());
    }

    #[test]
    fn port_display() {
        assert_eq!(PortRange::single(445).to_string(), "445");
        assert_eq!(PortRange::ALL.to_string(), "any");
        assert_eq!(PortRange::new(80, 88).unwrap().to_string(), "80-88");
    }
}
