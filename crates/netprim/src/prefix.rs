//! CIDR prefixes in canonical form.
//!
//! A [`Prefix`] is the unit of both routing (FIB entries, paper §2.2)
//! and intent (contracts, §2.4). The trie-based verification algorithm
//! (§2.5.2) relies on prefixes forming a containment partial order, so
//! the type exposes `contains_prefix`, `extends`, and sibling/parent
//! navigation directly.

use crate::error::ParseError;
use crate::ip::Ipv4;
use crate::range::IpRange;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A canonical CIDR prefix: a network address plus a mask length.
///
/// Canonical means all host bits are zero; [`Prefix::new`] rejects
/// non-canonical inputs so two equal address ranges always compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4,
    len: u8,
}

impl Prefix {
    /// The default prefix `0.0.0.0/0`, covering the entire address space.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4::ZERO,
        len: 0,
    };

    /// Construct a prefix, rejecting masks longer than 32 bits and
    /// addresses with non-zero host bits.
    pub fn new(addr: Ipv4, len: u8) -> Result<Self, ParseError> {
        if len > 32 {
            return Err(ParseError::new(
                "prefix",
                format!("{addr}/{len}"),
                "mask length exceeds 32",
            ));
        }
        let p = Prefix { addr, len };
        if addr.0 & !p.mask() != 0 {
            return Err(ParseError::new(
                "prefix",
                format!("{addr}/{len}"),
                "host bits are not zero (non-canonical prefix)",
            ));
        }
        Ok(p)
    }

    /// Construct a prefix from any address inside it, zeroing host bits.
    pub fn containing(addr: Ipv4, len: u8) -> Result<Self, ParseError> {
        if len > 32 {
            return Err(ParseError::new(
                "prefix",
                format!("{addr}/{len}"),
                "mask length exceeds 32",
            ));
        }
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Ok(Prefix {
            addr: Ipv4(addr.0 & mask),
            len,
        })
    }

    /// A host route (`/32`) for a single address.
    pub const fn host(addr: Ipv4) -> Self {
        Prefix { addr, len: 32 }
    }

    /// The network address.
    pub const fn addr(self) -> Ipv4 {
        self.addr
    }

    /// The mask length in bits.
    ///
    /// (Not a container length — `/0` is the default route, not an
    /// "empty" prefix — so there is deliberately no `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for the default prefix `0.0.0.0/0`.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The netmask as a `u32` (e.g. `/24` → `0xffff_ff00`).
    pub const fn mask(self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    /// First address covered.
    pub const fn first(self) -> Ipv4 {
        self.addr
    }

    /// Last address covered (broadcast address for the prefix).
    pub const fn last(self) -> Ipv4 {
        Ipv4(self.addr.0 | !self.mask())
    }

    /// Number of addresses covered, as `u64` so `/0` does not overflow.
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Does this prefix cover the given address?
    pub const fn contains(self, ip: Ipv4) -> bool {
        ip.0 & self.mask() == self.addr.0
    }

    /// Does this prefix cover every address of `other`?
    ///
    /// `a.contains_prefix(b)` is the `b.prefix ⊆ a.range` test used when
    /// selecting candidate rules for a contract (paper §2.5.2).
    pub const fn contains_prefix(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Is this prefix a strict extension (longer, contained) of `other`?
    pub const fn extends(self, other: Prefix) -> bool {
        self.len > other.len && other.contains(self.addr)
    }

    /// Do the two prefixes share any address? For proper prefixes this
    /// is equivalent to one containing the other.
    pub const fn overlaps(self, other: Prefix) -> bool {
        self.contains_prefix(other) || other.contains_prefix(self)
    }

    /// The covering prefix one bit shorter, or `None` for `/0`.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        Some(Prefix::containing(self.addr, self.len - 1).expect("len-1 <= 32"))
    }

    /// The two halves of this prefix, or `None` for `/32`.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Prefix {
            addr: Ipv4(self.addr.0 | (1 << (31 - self.len))),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The value of the address bit at `index` (0 = most significant).
    ///
    /// Used by longest-prefix-match tries to choose a branch.
    pub const fn bit(self, index: u8) -> bool {
        (self.addr.0 >> (31 - index)) & 1 == 1
    }

    /// The inclusive address range covered by this prefix.
    pub const fn range(self) -> IpRange {
        IpRange::new_unchecked(self.first(), self.last())
    }

    /// Enumerate the `2^(target_len - self.len)` subnets of a given
    /// longer mask length. Panics if `target_len` is shorter than `len`
    /// or above 32; intended for topology generation, not hot paths.
    pub fn subnets(self, target_len: u8) -> impl Iterator<Item = Prefix> {
        assert!(target_len >= self.len && target_len <= 32);
        let count = 1u64 << (target_len - self.len);
        let step = 1u64 << (32 - target_len);
        let base = self.addr.0 as u64;
        (0..count).map(move |i| Prefix {
            addr: Ipv4((base + i * step) as u32),
            len: target_len,
        })
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new("prefix", s, "missing '/<len>'"))?;
        let addr: Ipv4 = addr_s.parse()?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| ParseError::new("prefix", s, "mask length is not a number"))?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "10.3.129.224/28", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn new_rejects_noncanonical() {
        assert!(Prefix::new(Ipv4::new(10, 0, 0, 1), 8).is_err());
        assert!(Prefix::new(Ipv4::new(10, 0, 0, 0), 33).is_err());
        assert!("10.0.0.1/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn containing_canonicalizes() {
        let q = Prefix::containing(Ipv4::new(10, 1, 2, 3), 8).unwrap();
        assert_eq!(q, p("10.0.0.0/8"));
        let d = Prefix::containing(Ipv4::new(10, 1, 2, 3), 0).unwrap();
        assert_eq!(d, Prefix::DEFAULT);
    }

    #[test]
    fn first_last_size() {
        let q = p("10.3.129.224/28");
        assert_eq!(q.first(), Ipv4::new(10, 3, 129, 224));
        assert_eq!(q.last(), Ipv4::new(10, 3, 129, 239));
        assert_eq!(q.size(), 16);
        assert_eq!(Prefix::DEFAULT.size(), 1u64 << 32);
        assert_eq!(Prefix::DEFAULT.last(), Ipv4::MAX);
    }

    #[test]
    fn containment_relations() {
        let eight = p("10.0.0.0/8");
        let sixteen = p("10.20.0.0/16");
        let other = p("11.0.0.0/8");
        assert!(eight.contains_prefix(sixteen));
        assert!(!sixteen.contains_prefix(eight));
        assert!(sixteen.extends(eight));
        assert!(!eight.extends(eight));
        assert!(eight.contains_prefix(eight));
        assert!(!eight.overlaps(other));
        assert!(eight.overlaps(sixteen));
        assert!(Prefix::DEFAULT.contains_prefix(eight));
    }

    #[test]
    fn contains_addresses_at_boundaries() {
        let q = p("192.168.4.0/22");
        assert!(q.contains(Ipv4::new(192, 168, 4, 0)));
        assert!(q.contains(Ipv4::new(192, 168, 7, 255)));
        assert!(!q.contains(Ipv4::new(192, 168, 8, 0)));
        assert!(!q.contains(Ipv4::new(192, 168, 3, 255)));
    }

    #[test]
    fn parent_child_navigation() {
        let q = p("10.0.0.0/8");
        let (l, r) = q.children().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert_eq!(l.parent().unwrap(), q);
        assert_eq!(r.parent().unwrap(), q);
        assert_eq!(Prefix::DEFAULT.parent(), None);
        assert_eq!(Prefix::host(Ipv4::MAX).children(), None);
    }

    #[test]
    fn bit_indexing() {
        let q = p("128.0.0.0/1");
        assert!(q.bit(0));
        let q = p("64.0.0.0/2");
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }

    #[test]
    fn subnet_enumeration() {
        let subs: Vec<_> = p("10.0.0.0/22").subnets(24).collect();
        assert_eq!(
            subs,
            vec![
                p("10.0.0.0/24"),
                p("10.0.1.0/24"),
                p("10.0.2.0/24"),
                p("10.0.3.0/24")
            ]
        );
        let identity: Vec<_> = p("10.0.0.0/24").subnets(24).collect();
        assert_eq!(identity, vec![p("10.0.0.0/24")]);
    }

    #[test]
    fn range_conversion() {
        let r = p("10.0.0.0/30").range();
        assert_eq!(r.start(), Ipv4::new(10, 0, 0, 0));
        assert_eq!(r.end(), Ipv4::new(10, 0, 0, 3));
    }
}
