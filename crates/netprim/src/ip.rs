//! IPv4 addresses as transparent 32-bit values.
//!
//! We deliberately use our own newtype instead of [`std::net::Ipv4Addr`]:
//! every engine in this workspace (the trie walker, the bit-blaster, the
//! interval analyzer) treats addresses as unsigned 32-bit integers, and a
//! `u32` newtype makes those conversions free and explicit.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// Ordering and comparison follow the unsigned integer interpretation,
/// which is exactly the ordering used in bit-vector contract encodings
/// (`10.0.0.0 <= x <= 10.255.255.255`, paper §2.5.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The unspecified address `0.0.0.0`.
    pub const ZERO: Ipv4 = Ipv4(0);
    /// The maximum address `255.255.255.255`.
    pub const MAX: Ipv4 = Ipv4(u32::MAX);

    /// Build an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Saturating successor; `255.255.255.255` maps to itself.
    pub const fn saturating_next(self) -> Ipv4 {
        Ipv4(self.0.saturating_add(1))
    }

    /// Checked successor, `None` at the top of the space.
    pub const fn checked_next(self) -> Option<Ipv4> {
        match self.0.checked_add(1) {
            Some(v) => Some(Ipv4(v)),
            None => None,
        }
    }

    /// Checked predecessor, `None` at `0.0.0.0`.
    pub const fn checked_prev(self) -> Option<Ipv4> {
        match self.0.checked_sub(1) {
            Some(v) => Some(Ipv4(v)),
            None => None,
        }
    }
}

impl From<u32> for Ipv4 {
    fn from(v: u32) -> Self {
        Ipv4(v)
    }
}

impl From<Ipv4> for u32 {
    fn from(v: Ipv4) -> Self {
        v.0
    }
}

impl From<[u8; 4]> for Ipv4 {
    fn from(o: [u8; 4]) -> Self {
        Ipv4::new(o[0], o[1], o[2], o[3])
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ipv4 {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| ParseError::new("ipv4 address", s, reason);
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| err("expected four octets"))?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err("octet must be 1-3 decimal digits"));
            }
            if part.len() > 1 && part.starts_with('0') {
                return Err(err("octet has a leading zero"));
            }
            *slot = part
                .parse::<u8>()
                .map_err(|_| err("octet exceeds 255"))?;
        }
        if parts.next().is_some() {
            return Err(err("more than four octets"));
        }
        Ok(Ipv4::from(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_display_parse() {
        for raw in [0u32, 1, 0x0a00_0001, 0xc0a8_0101, u32::MAX] {
            let ip = Ipv4(raw);
            let back: Ipv4 = ip.to_string().parse().unwrap();
            assert_eq!(ip, back);
        }
    }

    #[test]
    fn parse_dotted_quad() {
        assert_eq!("10.20.30.40".parse::<Ipv4>().unwrap(), Ipv4::new(10, 20, 30, 40));
        assert_eq!("0.0.0.0".parse::<Ipv4>().unwrap(), Ipv4::ZERO);
        assert_eq!("255.255.255.255".parse::<Ipv4>().unwrap(), Ipv4::MAX);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.x", "01.2.3.4", "1..2.3", " 1.2.3.4",
            "1.2.3.4 ", "1,2,3,4", "1.2.3.1000",
        ] {
            assert!(bad.parse::<Ipv4>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn ordering_matches_integer_ordering() {
        assert!(Ipv4::new(10, 0, 0, 0) < Ipv4::new(10, 0, 0, 1));
        assert!(Ipv4::new(10, 255, 255, 255) < Ipv4::new(11, 0, 0, 0));
        assert!(Ipv4::new(128, 0, 0, 0) > Ipv4::new(127, 255, 255, 255));
    }

    #[test]
    fn successors_and_predecessors() {
        assert_eq!(Ipv4::ZERO.checked_prev(), None);
        assert_eq!(Ipv4::MAX.checked_next(), None);
        assert_eq!(Ipv4::MAX.saturating_next(), Ipv4::MAX);
        assert_eq!(
            Ipv4::new(10, 0, 0, 255).checked_next(),
            Some(Ipv4::new(10, 0, 1, 0))
        );
    }

    #[test]
    fn octets_round_trip() {
        let ip = Ipv4::new(1, 2, 3, 4);
        assert_eq!(ip.octets(), [1, 2, 3, 4]);
        assert_eq!(Ipv4::from(ip.octets()), ip);
    }
}
