//! Property-based tests for topology generation: the structural
//! invariants the contract derivation and Claim 1 rely on.

use dctopo::{build_clos, ClosParams, MetadataService, Role};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ClosParams> {
    (1u32..=4, 1u32..=6, 1u32..=4, 1u32..=3, 1u32..=2, 1u32..=3).prop_map(
        |(clusters, tors, leaves, spine_mult, groups, prefixes)| ClosParams {
            clusters,
            tors_per_cluster: tors,
            leaves_per_cluster: leaves,
            spines: leaves * spine_mult,
            regional_spines: groups * 2,
            regional_groups: groups,
            prefixes_per_tor: prefixes,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_and_link_counts_match_formula(p in arb_params()) {
        let t = build_clos(&p);
        prop_assert_eq!(t.len() as u32, p.device_count());
        let expect_links = p.clusters * p.tors_per_cluster * p.leaves_per_cluster
            + p.clusters * p.spines
            + p.spines * (p.regional_spines / p.regional_groups);
        prop_assert_eq!(t.links().len() as u32, expect_links);
    }

    #[test]
    fn every_tor_reaches_every_leaf_of_its_cluster(p in arb_params()) {
        let t = build_clos(&p);
        for tor in t.devices_with_role(Role::Tor) {
            let leaf_peers: Vec<_> = t
                .expected_neighbors_with_role(tor.id, Role::Leaf)
                .map(|(_, d)| d)
                .collect();
            prop_assert_eq!(leaf_peers.len() as u32, p.leaves_per_cluster);
            for peer in leaf_peers {
                prop_assert_eq!(t.device(peer).cluster, tor.cluster);
            }
            // ToRs have no other neighbors.
            prop_assert_eq!(
                t.expected_neighbors(tor.id).count() as u32,
                p.leaves_per_cluster
            );
        }
    }

    #[test]
    fn spine_planes_partition_leaves(p in arb_params()) {
        let t = build_clos(&p);
        // Every leaf connects to exactly spines/leaves_per_cluster
        // spines, and every spine to exactly one leaf per cluster.
        for leaf in t.devices_with_role(Role::Leaf) {
            prop_assert_eq!(
                t.expected_neighbors_with_role(leaf.id, Role::Spine).count() as u32,
                p.spines / p.leaves_per_cluster
            );
        }
        for spine in t.devices_with_role(Role::Spine) {
            let mut clusters: Vec<_> = t
                .expected_neighbors_with_role(spine.id, Role::Leaf)
                .map(|(_, d)| t.device(d).cluster.unwrap())
                .collect();
            let total = clusters.len() as u32;
            clusters.sort();
            clusters.dedup();
            prop_assert_eq!(total, p.clusters, "one leaf per cluster");
            prop_assert_eq!(clusters.len() as u32, p.clusters);
        }
    }

    #[test]
    fn metadata_mirrors_topology(p in arb_params()) {
        let t = build_clos(&p);
        let m = MetadataService::from_topology(&t);
        for d in t.devices() {
            prop_assert_eq!(
                m.neighbors(d.id).len(),
                t.expected_neighbors(d.id).count()
            );
        }
        prop_assert_eq!(
            m.prefix_facts().len() as u32,
            p.clusters * p.tors_per_cluster * p.prefixes_per_tor
        );
        // Ownership map covers both ends of every link, distinctly.
        for l in t.links() {
            prop_assert_eq!(m.owner_of(l.lo_addr), Some(l.lo));
            prop_assert_eq!(m.owner_of(l.hi_addr), Some(l.hi));
        }
    }

    #[test]
    fn asn_scheme_invariants(p in arb_params()) {
        let t = build_clos(&p);
        // Spines share one ASN; regionals share one ASN; leaf ASNs are
        // per cluster; ToR ASNs never collide with leaf/spine ASNs.
        let spine_asns: Vec<_> = t.devices_with_role(Role::Spine).map(|d| d.asn).collect();
        prop_assert!(spine_asns.windows(2).all(|w| w[0] == w[1]));
        for leaf in t.devices_with_role(Role::Leaf) {
            for tor in t.devices_with_role(Role::Tor) {
                prop_assert_ne!(leaf.asn, tor.asn);
            }
            prop_assert_ne!(leaf.asn, spine_asns[0]);
        }
    }
}
