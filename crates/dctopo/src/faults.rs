//! Link and session state, and the failure modes RCDC classifies.
//!
//! Contracts are generated from the **expected** topology; faults only
//! affect the simulated control plane (and therefore the FIBs), which
//! is exactly how RCDC surfaces them as contract violations (§2.4,
//! §2.6.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The operational state of a point-to-point link / its BGP session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkState {
    /// Link and BGP session healthy.
    Up,
    /// Operationally down — e.g. optical-cable hardware failure
    /// (§2.6.2 "Hardware Failures"). Remediation: replace the cable.
    OperDown,
    /// BGP session administratively shut — e.g. a lossy-link
    /// mitigation that was never rolled back (§2.6.2 "Operation
    /// Drift"). Remediation: unshut and monitor.
    AdminShut,
}

impl LinkState {
    /// Does a BGP session run over this link right now?
    pub const fn session_up(self) -> bool {
        matches!(self, LinkState::Up)
    }
}

impl fmt::Display for LinkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkState::Up => "up",
            LinkState::OperDown => "oper-down",
            LinkState::AdminShut => "admin-shut",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_up_carries_sessions() {
        assert!(LinkState::Up.session_up());
        assert!(!LinkState::OperDown.session_up());
        assert!(!LinkState::AdminShut.session_up());
    }
}
