//! # dctopo — Clos datacenter topology, metadata, and faults
//!
//! The paper derives network intent "from facts about our network
//! topology and architecture… maintained by a metadata service" (§1,
//! §2.3). This crate is that substrate:
//!
//! * [`Device`], [`Link`], [`Topology`] — the physical model: ToR,
//!   leaf, spine, and regional-spine devices wired in the hierarchical
//!   Clos of §2.1, with per-link interface addresses and EBGP session
//!   endpoints.
//! * [`ClosParams`] / [`build_clos`] — a parameterized topology
//!   generator in the spirit of the cloud topology generator the paper
//!   references \[29\], including the ASN allocation scheme (spines
//!   share one ASN per datacenter, leaves one per cluster, ToR ASNs
//!   unique within and reused across clusters).
//! * [`MetadataService`] — the authoritative fact base consumed by
//!   contract generation: device roles, **expected** neighbors
//!   (independent of current link state), hosted prefixes, and
//!   interface-address ownership.
//! * [`faults`] — injectable failures: operational link-down (cabling
//!   or optics) and administrative BGP shutdown, feeding the §2.6.2
//!   error-taxonomy scenarios consumed by `bgpsim`.
//!
//! A faithful scaled-down replica of the paper's Figure 3 topology is
//! provided by [`generator::figure3`], used by the worked-example tests
//! and the `fig3_example` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod faults;
pub mod generator;
pub mod metadata;
pub mod topology;

pub use device::{Asn, ClusterId, Device, DeviceId, Role};
pub use faults::LinkState;
pub use generator::{build_clos, ClosParams};
pub use metadata::MetadataService;
pub use topology::{Link, LinkId, Topology};
