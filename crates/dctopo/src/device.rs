//! Devices, roles, clusters, and ASN allocation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense numeric identifier of a device within one [`crate::Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Identifier of a cluster — the set of racks behind one leaf layer
/// (paper §2.1: "the set of racks that are connected together").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClusterId(pub u32);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// A BGP autonomous system number. Azure's scheme uses private ASNs
/// (§2.1); we keep the same 64512–65534 band for generated topologies.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The fixed role a device plays in the Clos hierarchy. Roles are the
/// crux of local validation: "each network device plays a fixed role
/// for a set of address ranges" (§2.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Role {
    /// Top-of-rack switch (T0): hosts server VLAN prefixes.
    Tor,
    /// Leaf / aggregation switch (T1): cluster boundary.
    Leaf,
    /// Spine switch (T2): datacenter boundary.
    Spine,
    /// Regional spine: connects the datacenter to the regional network.
    RegionalSpine,
}

impl Role {
    /// Tier number, ToR = 0 … regional spine = 3. Shortest-path length
    /// arguments in Claim 1 use the tier distance.
    pub const fn tier(self) -> u8 {
        match self {
            Role::Tor => 0,
            Role::Leaf => 1,
            Role::Spine => 2,
            Role::RegionalSpine => 3,
        }
    }

    /// The role one tier up, if any.
    pub const fn upstream(self) -> Option<Role> {
        match self {
            Role::Tor => Some(Role::Leaf),
            Role::Leaf => Some(Role::Spine),
            Role::Spine => Some(Role::RegionalSpine),
            Role::RegionalSpine => None,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Tor => "tor",
            Role::Leaf => "leaf",
            Role::Spine => "spine",
            Role::RegionalSpine => "regional-spine",
        };
        f.write_str(s)
    }
}

/// One network device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Dense id within the topology.
    pub id: DeviceId,
    /// Human-readable name (`tor-c0-t1`, `spine-s3`, …).
    pub name: String,
    /// Fixed architectural role.
    pub role: Role,
    /// Allocated autonomous system number.
    pub asn: Asn,
    /// Cluster membership; `None` for spines and regional spines.
    pub cluster: Option<ClusterId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_matches_hierarchy() {
        assert!(Role::Tor.tier() < Role::Leaf.tier());
        assert!(Role::Leaf.tier() < Role::Spine.tier());
        assert!(Role::Spine.tier() < Role::RegionalSpine.tier());
    }

    #[test]
    fn upstream_chain() {
        assert_eq!(Role::Tor.upstream(), Some(Role::Leaf));
        assert_eq!(Role::Leaf.upstream(), Some(Role::Spine));
        assert_eq!(Role::Spine.upstream(), Some(Role::RegionalSpine));
        assert_eq!(Role::RegionalSpine.upstream(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DeviceId(7).to_string(), "d7");
        assert_eq!(Asn(65534).to_string(), "AS65534");
        assert_eq!(Role::RegionalSpine.to_string(), "regional-spine");
        assert_eq!(ClusterId(2).to_string(), "cluster2");
    }
}
