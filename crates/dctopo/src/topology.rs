//! The physical topology: devices, point-to-point links, hosted
//! prefixes, and adjacency queries.

use crate::device::{Device, DeviceId, Role};
use crate::faults::LinkState;
use netprim::{Ipv4, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense numeric identifier of a link within one [`Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LinkId(pub u32);

/// A point-to-point link between two devices, carrying one EBGP
/// session (§2.1: "EBGP sessions over direct point-to-point links").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Link id.
    pub id: LinkId,
    /// Lower-tier endpoint (e.g. the ToR on a ToR–leaf link).
    pub lo: DeviceId,
    /// Upper-tier endpoint.
    pub hi: DeviceId,
    /// Interface address on the `lo` side (one side of a /31).
    pub lo_addr: Ipv4,
    /// Interface address on the `hi` side.
    pub hi_addr: Ipv4,
    /// Current operational state.
    pub state: LinkState,
}

impl Link {
    /// The other endpoint as seen from `from`.
    pub fn peer_of(&self, from: DeviceId) -> DeviceId {
        if from == self.lo {
            self.hi
        } else {
            debug_assert_eq!(from, self.hi);
            self.lo
        }
    }

    /// The interface address on the *peer's* side, i.e. the next-hop
    /// address `from` uses when forwarding over this link.
    pub fn peer_addr_of(&self, from: DeviceId) -> Ipv4 {
        if from == self.lo {
            self.hi_addr
        } else {
            debug_assert_eq!(from, self.hi);
            self.lo_addr
        }
    }
}

/// The full datacenter topology, plus hosted-prefix facts.
///
/// Link state is mutable (fault injection); everything else is fixed at
/// construction, mirroring the paper's split between a fixed
/// architecture and fluctuating network state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    /// adjacency[device] = link ids incident to the device.
    adjacency: Vec<Vec<LinkId>>,
    /// VLAN prefixes each ToR announces (§2.1).
    hosted: HashMap<DeviceId, Vec<Prefix>>,
}

impl Topology {
    /// Assemble a topology from parts. Used by the generator; panics on
    /// dangling device references (a construction bug, not input error).
    pub fn new(devices: Vec<Device>, links: Vec<Link>, hosted: HashMap<DeviceId, Vec<Prefix>>) -> Self {
        let mut adjacency = vec![Vec::new(); devices.len()];
        for l in &links {
            assert!((l.lo.0 as usize) < devices.len() && (l.hi.0 as usize) < devices.len());
            adjacency[l.lo.0 as usize].push(l.id);
            adjacency[l.hi.0 as usize].push(l.id);
        }
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.id.0 as usize, i, "device ids must be dense and ordered");
        }
        for d in hosted.keys() {
            assert!((d.0 as usize) < devices.len());
        }
        Topology {
            devices,
            links,
            adjacency,
            hosted,
        }
    }

    /// All devices, ordered by id.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All links, ordered by id.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Device lookup.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Links incident to a device (regardless of state).
    pub fn links_of(&self, id: DeviceId) -> impl Iterator<Item = &Link> + '_ {
        self.adjacency[id.0 as usize].iter().map(|&l| self.link(l))
    }

    /// Neighbors over links whose BGP session is currently up.
    pub fn live_neighbors(&self, id: DeviceId) -> impl Iterator<Item = (&Link, DeviceId)> + '_ {
        self.links_of(id)
            .filter(|l| l.state.session_up())
            .map(move |l| (l, l.peer_of(id)))
    }

    /// Neighbors per the *expected* topology (ignoring state) — the
    /// basis for contract generation (§2.4: "we create contracts based
    /// on expected topology").
    pub fn expected_neighbors(&self, id: DeviceId) -> impl Iterator<Item = (&Link, DeviceId)> + '_ {
        self.links_of(id).map(move |l| (l, l.peer_of(id)))
    }

    /// Expected neighbors restricted to a role.
    pub fn expected_neighbors_with_role(
        &self,
        id: DeviceId,
        role: Role,
    ) -> impl Iterator<Item = (&Link, DeviceId)> + '_ {
        self.expected_neighbors(id)
            .filter(move |&(_, peer)| self.device(peer).role == role)
    }

    /// Prefixes hosted by a ToR.
    pub fn hosted_prefixes(&self, id: DeviceId) -> &[Prefix] {
        self.hosted.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every `(tor, prefix)` hosting fact in the datacenter.
    pub fn all_hosted(&self) -> impl Iterator<Item = (DeviceId, Prefix)> + '_ {
        let mut tors: Vec<_> = self.hosted.iter().collect();
        tors.sort_by_key(|(d, _)| **d);
        tors.into_iter()
            .flat_map(|(&d, ps)| ps.iter().map(move |&p| (d, p)))
    }

    /// Devices with a given role, in id order.
    pub fn devices_with_role(&self, role: Role) -> impl Iterator<Item = &Device> + '_ {
        self.devices.iter().filter(move |d| d.role == role)
    }

    /// Mutate the state of a link (fault injection / remediation).
    pub fn set_link_state(&mut self, id: LinkId, state: LinkState) {
        self.links[id.0 as usize].state = state;
    }

    /// Find the link between two devices, if one exists.
    pub fn link_between(&self, a: DeviceId, b: DeviceId) -> Option<&Link> {
        self.links_of(a)
            .find(|l| l.peer_of(a) == b)
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the topology has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Asn, Role};

    fn tiny() -> Topology {
        let devices = vec![
            Device {
                id: DeviceId(0),
                name: "tor-0".into(),
                role: Role::Tor,
                asn: Asn(65510),
                cluster: Some(crate::ClusterId(0)),
            },
            Device {
                id: DeviceId(1),
                name: "leaf-0".into(),
                role: Role::Leaf,
                asn: Asn(65533),
                cluster: Some(crate::ClusterId(0)),
            },
        ];
        let links = vec![Link {
            id: LinkId(0),
            lo: DeviceId(0),
            hi: DeviceId(1),
            lo_addr: Ipv4::new(30, 0, 0, 0),
            hi_addr: Ipv4::new(30, 0, 0, 1),
            state: LinkState::Up,
        }];
        let mut hosted = HashMap::new();
        hosted.insert(DeviceId(0), vec!["10.0.0.0/24".parse().unwrap()]);
        Topology::new(devices, links, hosted)
    }

    #[test]
    fn peer_resolution() {
        let t = tiny();
        let l = t.link(LinkId(0));
        assert_eq!(l.peer_of(DeviceId(0)), DeviceId(1));
        assert_eq!(l.peer_of(DeviceId(1)), DeviceId(0));
        assert_eq!(l.peer_addr_of(DeviceId(0)), Ipv4::new(30, 0, 0, 1));
        assert_eq!(l.peer_addr_of(DeviceId(1)), Ipv4::new(30, 0, 0, 0));
    }

    #[test]
    fn live_neighbors_respect_state() {
        let mut t = tiny();
        assert_eq!(t.live_neighbors(DeviceId(0)).count(), 1);
        t.set_link_state(LinkId(0), LinkState::OperDown);
        assert_eq!(t.live_neighbors(DeviceId(0)).count(), 0);
        // Expected neighbors are unaffected: contracts don't move.
        assert_eq!(t.expected_neighbors(DeviceId(0)).count(), 1);
        t.set_link_state(LinkId(0), LinkState::Up);
        assert_eq!(t.live_neighbors(DeviceId(0)).count(), 1);
    }

    #[test]
    fn hosted_prefix_lookup() {
        let t = tiny();
        assert_eq!(t.hosted_prefixes(DeviceId(0)).len(), 1);
        assert!(t.hosted_prefixes(DeviceId(1)).is_empty());
        let all: Vec<_> = t.all_hosted().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, DeviceId(0));
    }

    #[test]
    fn link_between_lookup() {
        let t = tiny();
        assert!(t.link_between(DeviceId(0), DeviceId(1)).is_some());
        assert!(t.link_between(DeviceId(1), DeviceId(0)).is_some());
    }

    #[test]
    fn role_filtered_neighbors() {
        let t = tiny();
        assert_eq!(
            t.expected_neighbors_with_role(DeviceId(0), Role::Leaf).count(),
            1
        );
        assert_eq!(
            t.expected_neighbors_with_role(DeviceId(0), Role::Spine).count(),
            0
        );
    }
}
