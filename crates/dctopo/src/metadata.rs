//! The metadata service: the authoritative fact base for intent.
//!
//! "Azure has a metadata service that maintains facts such as the IP
//! prefixes hosted in the top-of-rack switch routers, the details of
//! the neighbors, and how the BGP sessions are configured between
//! routers" (§1). Contract generation reads **only** this service —
//! never live network state — which is what makes contracts stable
//! under faults (§2.4).

use crate::device::{ClusterId, Device, DeviceId, Role};
use crate::topology::Topology;
use netprim::{Ipv4, Prefix};
use std::collections::HashMap;

/// One expected-neighbor fact: who a device is wired to, and the
/// next-hop interface address used to reach them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborFact {
    /// The neighboring device.
    pub device: DeviceId,
    /// The neighbor's interface address on the shared link — the
    /// next-hop address that appears in FIB entries.
    pub next_hop_addr: Ipv4,
    /// The neighbor's role.
    pub role: Role,
}

/// One prefix-locality fact: where a prefix lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixFact {
    /// The hosted prefix.
    pub prefix: Prefix,
    /// The ToR announcing it.
    pub tor: DeviceId,
    /// The cluster of that ToR.
    pub cluster: ClusterId,
}

/// Read-only snapshot of architectural facts, derived once from the
/// expected topology.
#[derive(Debug, Clone)]
pub struct MetadataService {
    devices: Vec<Device>,
    neighbors: Vec<Vec<NeighborFact>>,
    prefixes: Vec<PrefixFact>,
    hosted_by: HashMap<DeviceId, Vec<Prefix>>,
    interface_owner: HashMap<Ipv4, DeviceId>,
    cluster_leaves: HashMap<ClusterId, Vec<DeviceId>>,
    cluster_tors: HashMap<ClusterId, Vec<DeviceId>>,
}

impl MetadataService {
    /// Extract all facts from a topology. Link state is deliberately
    /// ignored: facts describe the expected architecture.
    pub fn from_topology(t: &Topology) -> Self {
        let devices = t.devices().to_vec();
        let mut neighbors = vec![Vec::new(); devices.len()];
        let mut interface_owner = HashMap::new();
        for l in t.links() {
            interface_owner.insert(l.lo_addr, l.lo);
            interface_owner.insert(l.hi_addr, l.hi);
            neighbors[l.lo.0 as usize].push(NeighborFact {
                device: l.hi,
                next_hop_addr: l.hi_addr,
                role: t.device(l.hi).role,
            });
            neighbors[l.hi.0 as usize].push(NeighborFact {
                device: l.lo,
                next_hop_addr: l.lo_addr,
                role: t.device(l.lo).role,
            });
        }
        let mut prefixes = Vec::new();
        let mut hosted_by: HashMap<DeviceId, Vec<Prefix>> = HashMap::new();
        for (tor, prefix) in t.all_hosted() {
            let cluster = t
                .device(tor)
                .cluster
                .expect("hosted prefixes live on ToRs, which have clusters");
            prefixes.push(PrefixFact {
                prefix,
                tor,
                cluster,
            });
            hosted_by.entry(tor).or_default().push(prefix);
        }
        let mut cluster_leaves: HashMap<ClusterId, Vec<DeviceId>> = HashMap::new();
        let mut cluster_tors: HashMap<ClusterId, Vec<DeviceId>> = HashMap::new();
        for d in &devices {
            if let Some(c) = d.cluster {
                match d.role {
                    Role::Leaf => cluster_leaves.entry(c).or_default().push(d.id),
                    Role::Tor => cluster_tors.entry(c).or_default().push(d.id),
                    _ => {}
                }
            }
        }
        MetadataService {
            devices,
            neighbors,
            prefixes,
            hosted_by,
            interface_owner,
            cluster_leaves,
            cluster_tors,
        }
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Device facts by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Expected neighbors of a device.
    pub fn neighbors(&self, id: DeviceId) -> &[NeighborFact] {
        &self.neighbors[id.0 as usize]
    }

    /// Expected neighbors with a given role.
    pub fn neighbors_with_role(
        &self,
        id: DeviceId,
        role: Role,
    ) -> impl Iterator<Item = &NeighborFact> + '_ {
        self.neighbors(id).iter().filter(move |n| n.role == role)
    }

    /// Every prefix-locality fact in the datacenter, in ToR order.
    pub fn prefix_facts(&self) -> &[PrefixFact] {
        &self.prefixes
    }

    /// Prefixes hosted by one ToR.
    pub fn hosted_by(&self, tor: DeviceId) -> &[Prefix] {
        self.hosted_by.get(&tor).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The device owning an interface address — resolves FIB next-hop
    /// addresses back to devices during validation.
    pub fn owner_of(&self, addr: Ipv4) -> Option<DeviceId> {
        self.interface_owner.get(&addr).copied()
    }

    /// Leaves of a cluster.
    pub fn leaves_of(&self, c: ClusterId) -> &[DeviceId] {
        self.cluster_leaves.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// ToRs of a cluster.
    pub fn tors_of(&self, c: ClusterId) -> &[DeviceId] {
        self.cluster_tors.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All cluster ids, sorted.
    pub fn clusters(&self) -> Vec<ClusterId> {
        let mut cs: Vec<ClusterId> = self.cluster_tors.keys().copied().collect();
        cs.sort();
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{build_clos, figure3, ClosParams};

    #[test]
    fn facts_survive_link_failures() {
        let mut f = figure3();
        let before = MetadataService::from_topology(&f.topology);
        // Fail some links; facts must not change.
        let link = f.topology.link_between(f.tors[0], f.a[2]).unwrap().id;
        f.topology
            .set_link_state(link, crate::faults::LinkState::OperDown);
        let after = MetadataService::from_topology(&f.topology);
        assert_eq!(
            before.neighbors(f.tors[0]).len(),
            after.neighbors(f.tors[0]).len()
        );
    }

    #[test]
    fn interface_ownership_round_trip() {
        let t = build_clos(&ClosParams::default());
        let m = MetadataService::from_topology(&t);
        for l in t.links() {
            assert_eq!(m.owner_of(l.lo_addr), Some(l.lo));
            assert_eq!(m.owner_of(l.hi_addr), Some(l.hi));
        }
        assert_eq!(m.owner_of(netprim::Ipv4::new(9, 9, 9, 9)), None);
    }

    #[test]
    fn prefix_facts_cover_all_hosted() {
        let p = ClosParams {
            prefixes_per_tor: 2,
            ..ClosParams::default()
        };
        let t = build_clos(&p);
        let m = MetadataService::from_topology(&t);
        assert_eq!(
            m.prefix_facts().len() as u32,
            p.clusters * p.tors_per_cluster * p.prefixes_per_tor
        );
        for fact in m.prefix_facts() {
            assert!(m.hosted_by(fact.tor).contains(&fact.prefix));
            assert_eq!(m.device(fact.tor).cluster, Some(fact.cluster));
        }
    }

    #[test]
    fn cluster_membership_queries() {
        let p = ClosParams::default();
        let t = build_clos(&p);
        let m = MetadataService::from_topology(&t);
        let clusters = m.clusters();
        assert_eq!(clusters.len() as u32, p.clusters);
        for c in clusters {
            assert_eq!(m.leaves_of(c).len() as u32, p.leaves_per_cluster);
            assert_eq!(m.tors_of(c).len() as u32, p.tors_per_cluster);
        }
    }

    #[test]
    fn neighbor_facts_match_figure3() {
        let f = figure3();
        let m = MetadataService::from_topology(&f.topology);
        // ToR1 has 4 leaf neighbors, no others.
        assert_eq!(m.neighbors(f.tors[0]).len(), 4);
        assert_eq!(m.neighbors_with_role(f.tors[0], Role::Leaf).count(), 4);
        // A1: 2 ToRs below, 1 spine above.
        assert_eq!(m.neighbors_with_role(f.a[0], Role::Tor).count(), 2);
        assert_eq!(m.neighbors_with_role(f.a[0], Role::Spine).count(), 1);
        // D1: one leaf per cluster, 2 regional spines.
        assert_eq!(m.neighbors_with_role(f.d[0], Role::Leaf).count(), 2);
        assert_eq!(
            m.neighbors_with_role(f.d[0], Role::RegionalSpine).count(),
            2
        );
    }
}
