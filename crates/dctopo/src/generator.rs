//! Parameterized Clos topology generation.
//!
//! Mirrors the synthetic "cloud topology generator" the paper points to
//! for benchmarks (§2.6.3, reference \[29\]): a hierarchical Clos with
//! Azure's wiring and ASN allocation scheme (§2.1):
//!
//! * every ToR connects to every leaf of its cluster;
//! * the spine layer is split into `leaves_per_cluster` planes and leaf
//!   `j` of each cluster connects to all spines of plane `j`;
//! * regional spines are split into `regional_groups` groups and spine
//!   `s` connects to all regional spines of group `s mod groups`;
//! * all spines share one ASN, leaves share one ASN per cluster, and
//!   ToR ASNs are unique within a cluster but **reused across
//!   clusters** (the detail that forces allowas-in on ToR sessions and
//!   enables the §2.6.2 migration misconfiguration).

use crate::device::{Asn, ClusterId, Device, DeviceId, Role};
use crate::faults::LinkState;
use crate::topology::{Link, LinkId, Topology};
use netprim::{Ipv4, Prefix};
use std::collections::HashMap;

/// Parameters of a generated Clos datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosParams {
    /// Number of clusters (`n` in Figure 1).
    pub clusters: u32,
    /// ToRs per cluster (`k`).
    pub tors_per_cluster: u32,
    /// Leaves per cluster (`m`); also the number of spine planes.
    pub leaves_per_cluster: u32,
    /// Total spine devices (`p`); must be a multiple of
    /// `leaves_per_cluster`.
    pub spines: u32,
    /// Regional spine devices reachable from this datacenter.
    pub regional_spines: u32,
    /// Groups the regional spines are partitioned into.
    pub regional_groups: u32,
    /// VLAN prefixes hosted per ToR.
    pub prefixes_per_tor: u32,
}

impl Default for ClosParams {
    fn default() -> Self {
        ClosParams {
            clusters: 4,
            tors_per_cluster: 8,
            leaves_per_cluster: 4,
            spines: 8,
            regional_spines: 4,
            regional_groups: 2,
            prefixes_per_tor: 1,
        }
    }
}

impl ClosParams {
    /// Total device count of the generated topology.
    pub fn device_count(&self) -> u32 {
        self.clusters * (self.tors_per_cluster + self.leaves_per_cluster)
            + self.spines
            + self.regional_spines
    }

    fn validate(&self) {
        assert!(self.clusters >= 1 && self.tors_per_cluster >= 1);
        assert!(self.leaves_per_cluster >= 1 && self.spines >= 1);
        assert!(self.regional_spines >= 1 && self.regional_groups >= 1);
        assert!(self.prefixes_per_tor >= 1);
        assert!(
            self.spines.is_multiple_of(self.leaves_per_cluster),
            "spines must divide evenly into {} planes",
            self.leaves_per_cluster
        );
        assert!(
            self.regional_spines.is_multiple_of(self.regional_groups),
            "regional spines must divide evenly into groups"
        );
        assert!(self.clusters <= 400, "leaf ASN band supports <= 400 clusters");
        assert!(self.tors_per_cluster <= 256, "ToR ASN band supports <= 256 ToRs/cluster");
        let total_prefixes =
            self.clusters as u64 * self.tors_per_cluster as u64 * self.prefixes_per_tor as u64;
        assert!(total_prefixes <= 1 << 16, "prefix pool (10.0.0.0/8 in /24s) exhausted");
    }
}

/// ASN shared by every spine in the datacenter (65535 in Figure 1).
pub const SPINE_ASN: Asn = Asn(65535);
/// Leaf ASN for cluster `c` is `65534 - c` (65534, 65533, … as in Figure 1).
pub fn leaf_asn(cluster: ClusterId) -> Asn {
    Asn(65534 - cluster.0)
}
/// ToR ASN for in-cluster index `t`; reused across clusters (§2.1).
pub fn tor_asn(index_in_cluster: u32) -> Asn {
    Asn(65100 + index_in_cluster)
}
/// ASN shared by the regional spine layer.
pub const REGIONAL_ASN: Asn = Asn(64900);

/// Generate a Clos topology. All links start [`LinkState::Up`].
pub fn build_clos(p: &ClosParams) -> Topology {
    p.validate();
    let mut devices = Vec::with_capacity(p.device_count() as usize);
    let mut push = |name: String, role: Role, asn: Asn, cluster: Option<ClusterId>| {
        let id = DeviceId(devices.len() as u32);
        devices.push(Device {
            id,
            name,
            role,
            asn,
            cluster,
        });
        id
    };

    // ToRs (cluster-major), then leaves, spines, regional spines.
    let mut tors = vec![Vec::with_capacity(p.tors_per_cluster as usize); p.clusters as usize];
    for c in 0..p.clusters {
        for t in 0..p.tors_per_cluster {
            let id = push(
                format!("tor-c{c}-t{t}"),
                Role::Tor,
                tor_asn(t),
                Some(ClusterId(c)),
            );
            tors[c as usize].push(id);
        }
    }
    let mut leaves = vec![Vec::with_capacity(p.leaves_per_cluster as usize); p.clusters as usize];
    for c in 0..p.clusters {
        for j in 0..p.leaves_per_cluster {
            let id = push(
                format!("leaf-c{c}-l{j}"),
                Role::Leaf,
                leaf_asn(ClusterId(c)),
                Some(ClusterId(c)),
            );
            leaves[c as usize].push(id);
        }
    }
    let spines: Vec<DeviceId> = (0..p.spines)
        .map(|s| push(format!("spine-s{s}"), Role::Spine, SPINE_ASN, None))
        .collect();
    let regionals: Vec<DeviceId> = (0..p.regional_spines)
        .map(|r| push(format!("regional-r{r}"), Role::RegionalSpine, REGIONAL_ASN, None))
        .collect();

    // Links: /31 interface pairs carved out of 30.0.0.0/8.
    let mut links = Vec::new();
    let mut connect = |lo: DeviceId, hi: DeviceId| {
        let id = LinkId(links.len() as u32);
        let base = Ipv4::new(30, 0, 0, 0).0 + 2 * id.0;
        links.push(Link {
            id,
            lo,
            hi,
            lo_addr: Ipv4(base),
            hi_addr: Ipv4(base + 1),
            state: LinkState::Up,
        });
    };

    for c in 0..p.clusters as usize {
        for &t in &tors[c] {
            for &l in &leaves[c] {
                connect(t, l);
            }
        }
        // Leaf j connects to all spines of plane j.
        for (j, &l) in leaves[c].iter().enumerate() {
            for (s, &sp) in spines.iter().enumerate() {
                if s as u32 % p.leaves_per_cluster == j as u32 {
                    connect(l, sp);
                }
            }
        }
    }
    for (s, &sp) in spines.iter().enumerate() {
        for (r, &reg) in regionals.iter().enumerate() {
            if r as u32 % p.regional_groups == s as u32 % p.regional_groups {
                connect(sp, reg);
            }
        }
    }

    // Hosted prefixes: /24s carved out of 10.0.0.0/8, per ToR.
    let mut hosted: HashMap<DeviceId, Vec<Prefix>> = HashMap::new();
    let mut next_slot: u32 = 0;
    for cluster_tors in &tors {
        for &t in cluster_tors {
            let mut ps = Vec::with_capacity(p.prefixes_per_tor as usize);
            for _ in 0..p.prefixes_per_tor {
                let addr = Ipv4(Ipv4::new(10, 0, 0, 0).0 + (next_slot << 8));
                ps.push(Prefix::new(addr, 24).expect("aligned /24"));
                next_slot += 1;
            }
            hosted.insert(t, ps);
        }
    }

    Topology::new(devices, links, hosted)
}

/// Handles into the paper's Figure 3 scaled-down topology.
///
/// Two clusters (A and B), each with two ToRs and four leaves; four
/// spines `D1..D4` each reached by exactly one leaf per cluster; four
/// regional spines `R1..R4` in two groups. `prefix_a..prefix_d` are the
/// prefixes hosted by `tor1..tor4` respectively.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// The topology itself.
    pub topology: Topology,
    /// `ToR1`, `ToR2` (cluster A), `ToR3`, `ToR4` (cluster B).
    pub tors: [DeviceId; 4],
    /// Cluster A leaves `A1..A4`.
    pub a: [DeviceId; 4],
    /// Cluster B leaves `B1..B4`.
    pub b: [DeviceId; 4],
    /// Spines `D1..D4`.
    pub d: [DeviceId; 4],
    /// Regional spines `R1..R4`.
    pub r: [DeviceId; 4],
    /// `Prefix_A..Prefix_D`, hosted by `ToR1..ToR4`.
    pub prefixes: [Prefix; 4],
}

/// Build the Figure 3 topology with named handles.
pub fn figure3() -> Figure3 {
    let params = ClosParams {
        clusters: 2,
        tors_per_cluster: 2,
        leaves_per_cluster: 4,
        spines: 4,
        regional_spines: 4,
        regional_groups: 2,
        prefixes_per_tor: 1,
    };
    let topology = build_clos(&params);
    let find = |name: &str| {
        topology
            .devices()
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("missing device {name}"))
            .id
    };
    let tors = [
        find("tor-c0-t0"),
        find("tor-c0-t1"),
        find("tor-c1-t0"),
        find("tor-c1-t1"),
    ];
    let a = [
        find("leaf-c0-l0"),
        find("leaf-c0-l1"),
        find("leaf-c0-l2"),
        find("leaf-c0-l3"),
    ];
    let b = [
        find("leaf-c1-l0"),
        find("leaf-c1-l1"),
        find("leaf-c1-l2"),
        find("leaf-c1-l3"),
    ];
    let d = [
        find("spine-s0"),
        find("spine-s1"),
        find("spine-s2"),
        find("spine-s3"),
    ];
    let r = [
        find("regional-r0"),
        find("regional-r1"),
        find("regional-r2"),
        find("regional-r3"),
    ];
    let prefixes = [
        topology.hosted_prefixes(tors[0])[0],
        topology.hosted_prefixes(tors[1])[0],
        topology.hosted_prefixes(tors[2])[0],
        topology.hosted_prefixes(tors[3])[0],
    ];
    Figure3 {
        topology,
        tors,
        a,
        b,
        d,
        r,
        prefixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_and_link_counts() {
        let p = ClosParams::default();
        let t = build_clos(&p);
        assert_eq!(t.len() as u32, p.device_count());
        // tor-leaf: clusters * k * m; leaf-spine: clusters * spines
        // (each leaf gets spines/m spines, m leaves per cluster);
        // spine-regional: spines * regionals / groups.
        let expect_links = p.clusters * p.tors_per_cluster * p.leaves_per_cluster
            + p.clusters * p.spines
            + p.spines * (p.regional_spines / p.regional_groups);
        assert_eq!(t.links().len() as u32, expect_links);
    }

    #[test]
    fn asn_scheme_matches_paper() {
        let t = build_clos(&ClosParams::default());
        for d in t.devices_with_role(Role::Spine) {
            assert_eq!(d.asn, SPINE_ASN);
        }
        // Leaves of one cluster share an ASN; different clusters differ.
        let leaf_asns: Vec<_> = t
            .devices_with_role(Role::Leaf)
            .map(|d| (d.cluster.unwrap(), d.asn))
            .collect();
        for (c, a) in &leaf_asns {
            assert_eq!(*a, leaf_asn(*c));
        }
        // ToR ASNs unique within a cluster, reused across clusters.
        let c0: Vec<_> = t
            .devices_with_role(Role::Tor)
            .filter(|d| d.cluster == Some(ClusterId(0)))
            .map(|d| d.asn)
            .collect();
        let mut uniq = c0.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), c0.len(), "ToR ASNs must be unique in a cluster");
        let c1: Vec<_> = t
            .devices_with_role(Role::Tor)
            .filter(|d| d.cluster == Some(ClusterId(1)))
            .map(|d| d.asn)
            .collect();
        assert_eq!(c0, c1, "ToR ASNs are reused across clusters");
    }

    #[test]
    fn tors_connect_to_all_cluster_leaves_only() {
        let p = ClosParams::default();
        let t = build_clos(&p);
        for tor in t.devices_with_role(Role::Tor) {
            let peers: Vec<_> = t.expected_neighbors(tor.id).map(|(_, d)| d).collect();
            assert_eq!(peers.len() as u32, p.leaves_per_cluster);
            for peer in peers {
                let pd = t.device(peer);
                assert_eq!(pd.role, Role::Leaf);
                assert_eq!(pd.cluster, tor.cluster);
            }
        }
    }

    #[test]
    fn leaves_cover_disjoint_spine_planes() {
        let p = ClosParams::default();
        let t = build_clos(&p);
        // Each spine must be reachable from every cluster exactly once.
        for spine in t.devices_with_role(Role::Spine) {
            let leaf_peers: Vec<_> = t
                .expected_neighbors_with_role(spine.id, Role::Leaf)
                .map(|(_, d)| t.device(d).cluster.unwrap())
                .collect();
            assert_eq!(leaf_peers.len() as u32, p.clusters);
            let mut uniq = leaf_peers.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), leaf_peers.len());
        }
    }

    #[test]
    fn interface_addresses_are_unique() {
        let t = build_clos(&ClosParams::default());
        let mut addrs: Vec<Ipv4> = t
            .links()
            .iter()
            .flat_map(|l| [l.lo_addr, l.hi_addr])
            .collect();
        let before = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), before);
    }

    #[test]
    fn hosted_prefixes_are_disjoint_across_tors() {
        let p = ClosParams {
            prefixes_per_tor: 3,
            ..ClosParams::default()
        };
        let t = build_clos(&p);
        let mut all: Vec<Prefix> = t.all_hosted().map(|(_, pf)| pf).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
        assert_eq!(
            before as u32,
            p.clusters * p.tors_per_cluster * p.prefixes_per_tor
        );
    }

    #[test]
    fn figure3_wiring_matches_paper() {
        let f = figure3();
        let t = &f.topology;
        // ToR1's leaves are A1..A4.
        let tor1_peers: Vec<_> = t.expected_neighbors(f.tors[0]).map(|(_, d)| d).collect();
        assert_eq!(tor1_peers.len(), 4);
        for &ai in &f.a {
            assert!(tor1_peers.contains(&ai));
        }
        // A1's only spine is D1.
        let a1_spines: Vec<_> = t
            .expected_neighbors_with_role(f.a[0], Role::Spine)
            .map(|(_, d)| d)
            .collect();
        assert_eq!(a1_spines, vec![f.d[0]]);
        // D1's regional spines are R1 and R3.
        let d1_regionals: Vec<_> = t
            .expected_neighbors_with_role(f.d[0], Role::RegionalSpine)
            .map(|(_, d)| d)
            .collect();
        assert_eq!(d1_regionals, vec![f.r[0], f.r[2]]);
        // D2's regional spines are R2 and R4.
        let d2_regionals: Vec<_> = t
            .expected_neighbors_with_role(f.d[1], Role::RegionalSpine)
            .map(|(_, d)| d)
            .collect();
        assert_eq!(d2_regionals, vec![f.r[1], f.r[3]]);
        // D1 reaches cluster A only through A1, cluster B only through B1.
        let d1_leaves: Vec<_> = t
            .expected_neighbors_with_role(f.d[0], Role::Leaf)
            .map(|(_, d)| d)
            .collect();
        assert_eq!(d1_leaves, vec![f.a[0], f.b[0]]);
        // Four distinct hosted prefixes.
        let mut ps = f.prefixes.to_vec();
        ps.sort();
        ps.dedup();
        assert_eq!(ps.len(), 4);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_unbalanced_planes() {
        build_clos(&ClosParams {
            spines: 7,
            leaves_per_cluster: 4,
            ..ClosParams::default()
        });
    }

    #[test]
    fn ten_k_scale_generation_is_fast() {
        // ~10^4 devices, the E2 scale point.
        let p = ClosParams {
            clusters: 96,
            tors_per_cluster: 96,
            leaves_per_cluster: 8,
            spines: 64,
            regional_spines: 8,
            regional_groups: 2,
            prefixes_per_tor: 1,
        };
        let t = build_clos(&p);
        assert!(t.len() >= 10_000, "{} devices", t.len());
    }
}
