//! Tier-1 smoke: a small fixed seed range through every oracle.
//!
//! The CI fuzz job covers a wider range; this keeps a divergence
//! visible to plain `cargo test` too (and pins the library API the
//! binary drives).

use difftest::{run_oracle, run_seed, Oracle};

#[test]
fn first_seeds_are_clean_across_all_oracles() {
    for seed in 0..20 {
        let divergences = run_seed(seed);
        assert!(
            divergences.is_empty(),
            "seed {seed}:\n{}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn oracle_names_round_trip() {
    for o in Oracle::ALL {
        assert_eq!(Oracle::parse(o.name()), Some(o));
    }
    assert_eq!(Oracle::parse("nonsense"), None);
}

#[test]
fn single_oracle_entry_point_is_clean() {
    for o in Oracle::ALL {
        assert!(run_oracle(o, 1234).is_none(), "{} diverged", o.name());
    }
}
