//! Shared random-case builders for the forwarding-engine oracles.
//!
//! The universe is deliberately tiny: FIB prefixes live under
//! `10.0.0.0/24` (plus the default route), next hops come from a
//! six-address pool, and contract prefixes are at most 256 addresses
//! wide. Small universes force collisions — overlapping rules, shadowed
//! extensions, partially covered contracts — which is where engines
//! disagree; and they keep the exhaustive per-address ground truth
//! affordable.

use crate::rng::Rng;
use bgpsim::{Fib, FibBuilder};
use dctopo::DeviceId;
use netprim::{Ipv4, Prefix};
use rcdc::contracts::Expectation;
use rcdc::{Contract, ContractKind, DeviceContracts};
use std::collections::HashSet;

/// The base of the address universe (`10.0.0.0/24`).
const BASE: u32 = 0x0a00_0000;

/// One generated FIB rule, kept as plain data so cases print cleanly
/// and shrink element-by-element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FibSpec {
    pub(crate) prefix: Prefix,
    pub(crate) hops: Vec<Ipv4>,
    pub(crate) local: bool,
}

/// One generated contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ContractSpec {
    pub(crate) prefix: Prefix,
    pub(crate) kind: ContractKind,
    /// `None` means `Expectation::Local`.
    pub(crate) expected: Option<Vec<Ipv4>>,
}

/// The next-hop address pool (leaf-side interface addresses).
pub(crate) fn hop_pool() -> Vec<Ipv4> {
    (1..=6).map(|i| Ipv4(0x1e00_0000 + i)).collect()
}

/// A random canonical prefix inside `10.0.0.0/24` with length in
/// `[min_len, 32]`, or the default route with probability 1/10 when
/// `allow_default`.
pub(crate) fn random_prefix(r: &mut Rng, min_len: u8, allow_default: bool) -> Prefix {
    if allow_default && r.chance(1, 10) {
        return Prefix::DEFAULT;
    }
    let len = r.range(u64::from(min_len), 32) as u8;
    let addr = BASE + r.below(256) as u32;
    Prefix::containing(Ipv4(addr), len).expect("len <= 32")
}

/// A sorted, deduplicated nonempty hop set from the pool.
pub(crate) fn random_hops(r: &mut Rng) -> Vec<Ipv4> {
    let pool = hop_pool();
    let n = r.range(1, 3) as usize;
    let mut hops: Vec<Ipv4> = (0..n).map(|_| *r.pick(&pool)).collect();
    hops.sort_unstable();
    hops.dedup();
    hops
}

/// Random FIB rules with distinct prefixes (the builder's last-wins
/// dedupe is exercised by its own regression tests; distinct prefixes
/// keep the ground-truth model trivially aligned with the table).
pub(crate) fn random_fib_specs(r: &mut Rng, max_rules: u64) -> Vec<FibSpec> {
    let n = r.range(0, max_rules);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..n {
        let prefix = random_prefix(r, 24, true);
        if !seen.insert(prefix) {
            continue;
        }
        let local = r.chance(1, 8);
        let hops = if local { Vec::new() } else { random_hops(r) };
        out.push(FibSpec {
            prefix,
            hops,
            local,
        });
    }
    out
}

/// Random contracts with distinct (prefix, kind) keys. Specific
/// contracts use prefixes of at most 256 addresses so the exhaustive
/// reference stays cheap; a default contract appears with probability
/// ~1/3.
pub(crate) fn random_contract_specs(r: &mut Rng, max_contracts: u64) -> Vec<ContractSpec> {
    let n = r.range(1, max_contracts);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    if r.chance(1, 3) {
        out.push(ContractSpec {
            prefix: Prefix::DEFAULT,
            kind: ContractKind::Default,
            expected: if r.chance(1, 6) {
                None
            } else {
                Some(random_hops(r))
            },
        });
    }
    for _ in 0..n {
        let prefix = random_prefix(r, 24, false);
        if !seen.insert(prefix) {
            continue;
        }
        out.push(ContractSpec {
            prefix,
            kind: ContractKind::Specific,
            expected: Some(random_hops(r)),
        });
    }
    out
}

/// Materialize FIB specs into a [`Fib`].
pub(crate) fn build_fib(device: DeviceId, specs: &[FibSpec]) -> Fib {
    let mut b = FibBuilder::new(device);
    for s in specs {
        b.push(s.prefix, s.hops.clone(), s.local);
    }
    b.finish()
}

/// Materialize contract specs into a [`DeviceContracts`].
pub(crate) fn build_contracts(device: DeviceId, specs: &[ContractSpec]) -> DeviceContracts {
    DeviceContracts {
        contracts: specs
            .iter()
            .map(|s| Contract {
                device,
                prefix: s.prefix,
                kind: s.kind,
                expectation: match &s.expected {
                    Some(h) => Expectation::NextHops(h.clone().into()),
                    None => Expectation::Local,
                },
            })
            .collect(),
    }
}

/// Pretty-print a (FIB, contracts) case for divergence reports.
pub(crate) fn render_case(fib: &[FibSpec], contracts: &[ContractSpec]) -> String {
    let mut s = String::from("fib rules:\n");
    if fib.is_empty() {
        s.push_str("  (empty)\n");
    }
    for e in fib {
        s.push_str(&format!(
            "  {} -> {:?} local={}\n",
            e.prefix, e.hops, e.local
        ));
    }
    s.push_str("contracts:\n");
    for c in contracts {
        s.push_str(&format!(
            "  {:?} {} expect {:?}\n",
            c.kind, c.prefix, c.expected
        ));
    }
    s
}
