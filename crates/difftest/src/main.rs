//! Differential fuzzing driver.
//!
//! ```text
//! difftest [--seed N] [--count M] [--oracle <sat|engines|incremental|wire|secguru|all>] [--long]
//! ```
//!
//! Runs seeds `N..N+M` through the selected oracle(s). `--long` raises
//! the default count for soak runs. Exits nonzero on the first
//! divergence after printing the replay line and the minimized case.

#![forbid(unsafe_code)]

use difftest::{run_oracle, run_seed, Oracle};
use std::process::ExitCode;

struct Options {
    seed: u64,
    count: u64,
    oracle: Option<Oracle>,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftest [--seed N] [--count M] [--oracle {}|all] [--long]",
        Oracle::ALL.map(|o| o.name()).join("|")
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 0,
        count: 0,
        oracle: None,
    };
    let mut long = false;
    let mut count_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("difftest: {what} requires a value");
                usage()
            }
        };
        match arg.as_str() {
            "--seed" => match value("--seed").parse() {
                Ok(v) => opts.seed = v,
                Err(_) => usage(),
            },
            "--count" => match value("--count").parse() {
                Ok(v) => {
                    opts.count = v;
                    count_set = true;
                }
                Err(_) => usage(),
            },
            "--oracle" => {
                let v = value("--oracle");
                if v != "all" {
                    match Oracle::parse(&v) {
                        Some(o) => opts.oracle = Some(o),
                        None => {
                            eprintln!("difftest: unknown oracle {v:?}");
                            usage()
                        }
                    }
                }
            }
            "--long" => long = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("difftest: unknown argument {other:?}");
                usage()
            }
        }
    }
    if !count_set {
        opts.count = if long { 20_000 } else { 100 };
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let what = opts.oracle.map_or("all oracles", |o| o.name());
    eprintln!(
        "difftest: seeds {}..{} against {what}",
        opts.seed,
        opts.seed + opts.count
    );

    let mut divergences = 0u64;
    let progress_every = (opts.count / 20).max(1);
    for (i, seed) in (opts.seed..opts.seed + opts.count).enumerate() {
        let found = match opts.oracle {
            Some(o) => run_oracle(o, seed).into_iter().collect::<Vec<_>>(),
            None => run_seed(seed),
        };
        for d in &found {
            println!("{d}");
            divergences += 1;
        }
        if (i as u64 + 1).is_multiple_of(progress_every) {
            eprintln!(
                "difftest: {}/{} seeds done, {divergences} divergence(s)",
                i + 1,
                opts.count
            );
        }
    }
    if divergences > 0 {
        eprintln!("difftest: FAILED with {divergences} divergence(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("difftest: ok, {} seeds clean", opts.count);
        ExitCode::SUCCESS
    }
}
