//! Deterministic PRNG for reproducible case generation.
//!
//! The implementation lives in [`simnet::rng`] (the simulation harness
//! and this fuzzer share one SplitMix64 so a seed means the same thing
//! everywhere); this module re-exports it under the historical path.

pub(crate) use simnet::rng::{mix, Rng};
