//! Oracle: the verification engines against each other and against
//! exhaustive forwarding ground truth.
//!
//! Single-device mode: random FIBs and contracts inside a 256-address
//! universe are checked by `TrieEngine` (strict and semantic) and
//! `SmtEngine` (strict and semantic); all four verdicts are compared on
//! violated-contract key sets (the `(prefix, kind)` convention the
//! in-repo fig3 cross-check uses), and both are compared against a
//! per-address reference that literally walks every covered address
//! through `Fib::lookup` — the paper's Definition 2.1 evaluated by
//! brute force.
//!
//! Fabric mode (a fraction of seeds): the Figure-3 datacenter with a
//! random set of downed links, trie vs SMT on every device, plus the
//! Claim 1 implication — if every local contract holds, the global
//! baseline must find no dropped or looping paths for any hosted
//! prefix.

use crate::gen::{
    build_contracts, build_fib, random_contract_specs, random_fib_specs, render_case,
    ContractSpec, FibSpec,
};
use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use bgpsim::{simulate, Fib, SimConfig};
use dctopo::generator::figure3;
use dctopo::{DeviceId, LinkState, MetadataService};
use netprim::Prefix;
use rcdc::contracts::Expectation;
use rcdc::global_baseline::{forwarding_analysis, PathInfo};
use rcdc::{
    generate_contracts, Contract, ContractKind, Engine, ReferenceTrieEngine, SmtEngine, TrieEngine,
};

/// Violated-contract keys of a report: sorted, deduplicated
/// `(prefix, kind)` pairs, the cross-engine agreement convention.
fn violated_keys(r: &rcdc::ValidationReport) -> Vec<(Prefix, ContractKind)> {
    let mut keys: Vec<_> = r.violations.iter().map(|v| (v.prefix, v.kind)).collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Per-address reference verdict for one contract (Definition 2.1 by
/// exhaustive evaluation). Returns true when the contract is violated
/// under `strict` rules.
fn reference_violated(fib: &Fib, c: &Contract, strict: bool) -> bool {
    match c.kind {
        ContractKind::Default => {
            // Mirrors the shared structural default check: the engines
            // and the reference all read only the 0.0.0.0/0 entry.
            let entry = fib.default_entry();
            match (&c.expectation, entry) {
                (Expectation::NextHops(expected), Some(e)) => {
                    e.local || fib.next_hops(e) != &expected[..]
                }
                (Expectation::NextHops(_), None) => true,
                (Expectation::Local, Some(e)) => !e.local,
                (Expectation::Local, None) => true,
            }
        }
        ContractKind::Specific => {
            let expected = match &c.expectation {
                Expectation::NextHops(h) => h,
                Expectation::Local => {
                    return match fib.entry_for(c.prefix) {
                        Some(e) => !e.local,
                        None => true,
                    };
                }
            };
            if strict && fib.entry_for(c.prefix).is_none() {
                return true;
            }
            let (lo, hi) = (c.prefix.first().0, c.prefix.last().0);
            debug_assert!(u64::from(hi - lo) < 1 << 10, "universe kept small by gen");
            (lo..=hi).any(|ip| match fib.lookup(netprim::Ipv4(ip)) {
                None => true,
                Some(e) => e.local || fib.next_hops(e) != &expected[..],
            })
        }
    }
}

/// All four engines + the reference on one (FIB, contracts) case.
/// Returns the first disagreement.
fn check_single_device(fib_specs: &[FibSpec], contract_specs: &[ContractSpec]) -> Option<String> {
    let device = DeviceId(0);
    let fib = build_fib(device, fib_specs);
    let contracts = build_contracts(device, contract_specs);

    let trie_strict = TrieEngine::new().validate_device(&fib, &contracts);
    let trie_sem = TrieEngine::semantic().validate_device(&fib, &contracts);
    let smt_strict = SmtEngine::new().validate_device(&fib, &contracts);
    let smt_sem = SmtEngine::semantic().validate_device(&fib, &contracts);

    // The flat trie vs the frozen pointer-trie reference: these share
    // the violation conventions exactly, so the comparison is the full
    // report — rule for rule, in order — not just violated keys.
    for (label, flat, reference) in [
        ("strict", &trie_strict, ReferenceTrieEngine::new()),
        ("semantic", &trie_sem, ReferenceTrieEngine::semantic()),
    ] {
        let want = reference.validate_device(&fib, &contracts);
        if *flat != want {
            return Some(format!(
                "{label} flat trie diverges from reference trie: {:?} vs {:?}",
                flat.violations, want.violations
            ));
        }
    }

    let kt_strict = violated_keys(&trie_strict);
    let kt_sem = violated_keys(&trie_sem);
    let ks_strict = violated_keys(&smt_strict);
    let ks_sem = violated_keys(&smt_sem);

    if kt_strict != ks_strict {
        return Some(format!(
            "strict engines disagree: trie {kt_strict:?} vs smt {ks_strict:?}"
        ));
    }
    if kt_sem != ks_sem {
        return Some(format!(
            "semantic engines disagree: trie {kt_sem:?} vs smt {ks_sem:?}"
        ));
    }
    // Strict only adds checks, never removes them.
    if !kt_sem.iter().all(|k| kt_strict.contains(k)) {
        return Some(format!(
            "semantic violations not a subset of strict: {kt_sem:?} vs {kt_strict:?}"
        ));
    }

    // Exhaustive reference, per contract.
    for c in &contracts.contracts {
        let key = (c.prefix, c.kind);
        for (strict, keys, label) in [
            (true, &kt_strict, "strict"),
            (false, &kt_sem, "semantic"),
        ] {
            let want = reference_violated(&fib, c, strict);
            let got = keys.contains(&key);
            if got != want {
                return Some(format!(
                    "{label} engines say violated={got} for {:?} {}, per-address reference says {want}",
                    c.kind, c.prefix
                ));
            }
        }
    }
    None
}

fn single_device_case(r: &mut Rng) -> (Vec<FibSpec>, Vec<ContractSpec>) {
    (random_fib_specs(r, 12), random_contract_specs(r, 6))
}

fn minimize_single(
    fib: &[FibSpec],
    contracts: &[ContractSpec],
) -> (Vec<FibSpec>, Vec<ContractSpec>) {
    let contracts_min = shrink_list(contracts, |cs| check_single_device(fib, cs).is_some());
    let fib_min = shrink_list(fib, |fs| check_single_device(fs, &contracts_min).is_some());
    (fib_min, contracts_min)
}

/// Figure-3 fabric under a random fault set: whole-fabric trie/SMT
/// agreement plus the Claim 1 implication against the global baseline.
fn check_fabric(r: &mut Rng) -> Option<(String, Vec<usize>)> {
    let n_links = figure3().topology.links().len();
    let kills: Vec<usize> = {
        let k = r.below(4);
        let mut v: Vec<usize> = (0..k).map(|_| r.below(n_links as u64) as usize).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // SMT on every device would dominate the runtime; sample a few and
    // rely on many seeds for coverage.
    let smt_devices: Vec<usize> = (0..3).map(|_| r.below(20) as usize).collect();
    check_fabric_case(&kills, &smt_devices).map(|s| (s, kills))
}

fn check_fabric_case(kills: &[usize], smt_devices: &[usize]) -> Option<String> {
    let fig = figure3();
    let mut topology = fig.topology;
    for &k in kills {
        let id = topology.links()[k].id;
        topology.set_link_state(id, LinkState::OperDown);
    }
    let fibs = simulate(&topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&topology);
    let contracts = generate_contracts(&meta);

    let trie = TrieEngine::new();
    let smt = SmtEngine::new();
    let mut all_clean = true;
    for (i, (fib, dc)) in fibs.iter().zip(&contracts).enumerate() {
        let rt = trie.validate_device(fib, dc);
        all_clean &= rt.is_clean();
        if smt_devices.contains(&i) {
            let rs = smt.validate_device(fib, dc);
            let (kt, ks) = (violated_keys(&rt), violated_keys(&rs));
            if kt != ks {
                return Some(format!(
                    "fabric device {i}: trie {kt:?} vs smt {ks:?} (kills {kills:?})"
                ));
            }
        }
    }

    // Claim 1: local contracts all holding implies global reachability
    // (no black holes, no loops) for every hosted prefix.
    if all_clean {
        for (tor, prefix) in topology.all_hosted() {
            let analysis = forwarding_analysis(&fibs, &meta, prefix);
            for (dev, info) in analysis.info.iter().enumerate() {
                if matches!(info, PathInfo::Dropped | PathInfo::Loops) {
                    return Some(format!(
                        "all contracts clean but device {dev} has {info:?} toward {prefix} \
                         (hosted on {tor:?}, kills {kills:?})"
                    ));
                }
            }
        }
    }
    None
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let (fib, contracts) = single_device_case(&mut r);
    if let Some(summary) = check_single_device(&fib, &contracts) {
        let (fib_min, contracts_min) = minimize_single(&fib, &contracts);
        return Err(Failure {
            summary,
            minimized: render_case(&fib_min, &contracts_min),
        });
    }
    // Whole-fabric mode on a fraction of seeds (simulate + 20 devices
    // is ~an order of magnitude more work than the single-device case).
    if r.chance(1, 8) {
        let smt_devices: Vec<usize> = (0..3).map(|_| r.below(20) as usize).collect();
        if let Some((summary, kills)) = check_fabric(&mut r) {
            let kills_min = shrink_list(&kills, |ks| {
                check_fabric_case(ks, &smt_devices).is_some()
            });
            return Err(Failure {
                summary,
                minimized: format!("figure3 with links {kills_min:?} set OperDown"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netprim::Ipv4;

    #[test]
    fn reference_flags_missing_default() {
        let fib = build_fib(DeviceId(0), &[]);
        let c = Contract {
            device: DeviceId(0),
            prefix: Prefix::DEFAULT,
            kind: ContractKind::Default,
            expectation: Expectation::NextHops(vec![Ipv4(0x1e00_0001)].into()),
        };
        assert!(reference_violated(&fib, &c, false));
    }

    #[test]
    fn healthy_fabric_has_no_divergence() {
        assert_eq!(check_fabric_case(&[], &[0, 7, 19]), None);
    }

    #[test]
    fn shadowed_mismatched_rule_is_not_a_violation() {
        // A /31 rule with wrong hops fully shadowed by two correct /32
        // extensions never forwards anything inside the contract range:
        // Definition 2.1 is satisfied, so no engine may flag it. This is
        // the minimized form of the trie over-report the fuzzer caught.
        let good = vec![Ipv4(0x1e00_0001)];
        let bad = vec![Ipv4(0x1e00_0002)];
        let base = 0x0a00_0000u32;
        let fib = vec![
            FibSpec {
                prefix: Prefix::containing(Ipv4(base), 32).unwrap(),
                hops: good.clone(),
                local: false,
            },
            FibSpec {
                prefix: Prefix::containing(Ipv4(base + 1), 32).unwrap(),
                hops: good.clone(),
                local: false,
            },
            FibSpec {
                prefix: Prefix::containing(Ipv4(base), 31).unwrap(),
                hops: bad,
                local: false,
            },
            FibSpec {
                prefix: Prefix::containing(Ipv4(base), 30).unwrap(),
                hops: good.clone(),
                local: false,
            },
        ];
        let contracts = vec![ContractSpec {
            prefix: Prefix::containing(Ipv4(base), 30).unwrap(),
            kind: ContractKind::Specific,
            expected: Some(good),
        }];
        assert_eq!(check_single_device(&fib, &contracts), None);
    }
}
