//! # difftest — the standing differential fuzzing harness
//!
//! The paper's engines are trusted because they watch each other:
//! "Azure uses both implementations to validate the datacenters and
//! monitors for differences in results" (§2.5.2). This crate is that
//! monitor for the workspace, in fuzzer form: every pair of independent
//! implementations is cross-checked on seeded random inputs, so a
//! soundness bug in any one of them shows up as a divergence instead of
//! a silently wrong verdict.
//!
//! Nine oracles, each a self-contained generator + cross-check:
//!
//! * [`Oracle::Sat`] — the CDCL [`smtkit::SatSolver`] (plain, under
//!   assumptions, and incrementally) against brute-force enumeration,
//!   plus structured pigeonhole instances with analytically known
//!   verdicts at sizes that exercise restarts and conflict analysis
//!   below the assumption frontier.
//! * [`Oracle::Engines`] — `TrieEngine` (strict and semantic) vs
//!   `SmtEngine` vs exhaustive per-address forwarding ground truth on
//!   one device, and on random Figure-3 fault sets the whole-fabric
//!   agreement plus the Claim 1 implication against the global
//!   baseline.
//! * [`Oracle::Incremental`] — `Engine::validate_delta` over random
//!   churn chains against full revalidation, with every delta pushed
//!   through the wire codec and `apply_delta`.
//! * [`Oracle::Wire`] — `WireSnapshot`/`FibDelta` round trips, plus
//!   decode under truncation and byte-level mutation (decode must fail
//!   cleanly or produce a value that re-encodes to the exact bytes).
//! * [`Oracle::SecGuru`] — SMT contract checking vs the interval
//!   engine vs exhaustive `Policy::allows` enumeration, and
//!   `semantic_diff` vs ground-truth policy equivalence.
//! * [`Oracle::Session`] — random assert/push/pop/`check_assuming`
//!   scripts against one long-lived [`smtkit::Session`] vs a fresh
//!   solver rebuilt per query vs brute-force enumeration, with model
//!   re-evaluation on every satisfiable verdict.
//! * [`Oracle::Sim`] — the deterministic fault-injection simulation of
//!   the live pipeline ([`simnet`]): seeded fault schedules (drops,
//!   duplicates, reordering, stale snapshots, corrupted deltas, flaps,
//!   mid-sweep contract republishes) against the end-state convergence
//!   invariants, with failing schedules ddmin-minimized.
//! * [`Oracle::Whatif`] — the k-failure robustness sweeper's
//!   incremental scenario evaluation (fixed-point restart + delta-only
//!   revalidation) against full re-simulation and cold validation on
//!   small seeded fabrics, plus brute-force audits of `Robust(k)`
//!   certificates, counterexample minimality, and serial-vs-parallel
//!   sweep determinism.
//! * [`Oracle::Rollout`] — the change-rollout planner's incremental
//!   state evaluation (anchored restarts + shared verdict memo)
//!   against apply-from-scratch re-simulation and cold validation,
//!   plus brute-force audits of every prefix state of emitted plans,
//!   unsafe-change-set minimality, and thread-count determinism.
//!
//! Every failure carries the replay seed and a greedily minimized
//! counterexample. Reproduce with
//! `cargo run -p difftest -- --oracle <name> --seed <N> --count 1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engines;
mod gen;
mod incremental;
mod rng;
mod rollout_oracle;
mod sat;
mod secguru_oracle;
mod session;
mod shrink;
mod simnet_oracle;
mod whatif_oracle;
mod wire;

use std::fmt;

/// A cross-check failure: two implementations disagreed (or one broke
/// an invariant the other guarantees).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which oracle caught it.
    pub oracle: Oracle,
    /// The seed that reproduces it.
    pub seed: u64,
    /// One-line description of the disagreement.
    pub summary: String,
    /// The greedily minimized counterexample, ready to paste into a
    /// regression test.
    pub minimized: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DIVERGENCE [{} seed {}]: {}",
            self.oracle.name(),
            self.seed,
            self.summary
        )?;
        writeln!(f, "minimized case:\n{}", self.minimized)?;
        write!(
            f,
            "replay: cargo run -p difftest -- --oracle {} --seed {} --count 1",
            self.oracle.name(),
            self.seed
        )
    }
}

/// Internal failure report produced by an oracle before it is stamped
/// with the oracle kind and seed.
pub(crate) struct Failure {
    pub(crate) summary: String,
    pub(crate) minimized: String,
}

/// The nine cross-check oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// CDCL SAT solver vs brute force / analytic verdicts.
    Sat,
    /// Trie vs SMT verification engines vs forwarding ground truth.
    Engines,
    /// Incremental revalidation vs full revalidation over churn.
    Incremental,
    /// Wire codec round trips, truncation, and mutation.
    Wire,
    /// SecGuru SMT vs interval engine vs concrete policy semantics.
    SecGuru,
    /// Incremental solver sessions vs fresh solvers vs brute force.
    Session,
    /// Deterministic fault-injection simulation of the live pipeline.
    Sim,
    /// Incremental what-if scenario evaluation vs brute-force
    /// re-simulation and cold validation.
    Whatif,
    /// Rollout-planner state evaluation and plan verdicts vs
    /// brute-force re-simulation and cold validation.
    Rollout,
}

impl Oracle {
    /// Every oracle, in the order the mixed runner executes them.
    pub const ALL: [Oracle; 9] = [
        Oracle::Sat,
        Oracle::Engines,
        Oracle::Incremental,
        Oracle::Wire,
        Oracle::SecGuru,
        Oracle::Session,
        Oracle::Sim,
        Oracle::Whatif,
        Oracle::Rollout,
    ];

    /// CLI name of the oracle.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Sat => "sat",
            Oracle::Engines => "engines",
            Oracle::Incremental => "incremental",
            Oracle::Wire => "wire",
            Oracle::SecGuru => "secguru",
            Oracle::Session => "session",
            Oracle::Sim => "sim",
            Oracle::Whatif => "whatif",
            Oracle::Rollout => "rollout",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Oracle> {
        Oracle::ALL.into_iter().find(|o| o.name() == s)
    }

    fn run(self, seed: u64) -> Result<(), Failure> {
        // Decorrelate oracles sharing a seed: each draws from its own
        // stream keyed by (seed, oracle tag).
        let sub = rng::mix(seed, self as u64 + 1);
        match self {
            Oracle::Sat => sat::run(sub),
            Oracle::Engines => engines::run(sub),
            Oracle::Incremental => incremental::run(sub),
            Oracle::Wire => wire::run(sub),
            Oracle::SecGuru => secguru_oracle::run(sub),
            Oracle::Session => session::run(sub),
            Oracle::Sim => simnet_oracle::run(sub),
            Oracle::Whatif => whatif_oracle::run(sub),
            Oracle::Rollout => rollout_oracle::run(sub),
        }
    }
}

/// Run one oracle on one seed.
pub fn run_oracle(oracle: Oracle, seed: u64) -> Option<Divergence> {
    oracle.run(seed).err().map(|f| Divergence {
        oracle,
        seed,
        summary: f.summary,
        minimized: f.minimized,
    })
}

/// Run every oracle on one seed (the mixed-oracle default).
pub fn run_seed(seed: u64) -> Vec<Divergence> {
    Oracle::ALL
        .into_iter()
        .filter_map(|o| run_oracle(o, seed))
        .collect()
}
