//! Oracle: the rollout planner's incremental state evaluation and
//! verdicts vs brute force.
//!
//! The planner ([`rcdc::RolloutPlanner`]) prices each explored
//! intermediate state as a delta — restart-patched fixed points from
//! general-subset anchors, touched-device-only revalidation, and a
//! cross-state `(device, fib hash)` verdict memo. All of that reuse
//! must be invisible in the reports. This oracle builds a small seeded
//! fabric with a seeded maintenance scenario (uplink migration or rack
//! decommission, optionally mixed with device overrides), then:
//!
//! * cross-checks random change *subsets*: the planner's
//!   [`state_reports`](rcdc::RolloutPlanner::state_reports) against
//!   applying the subset to a clone, re-simulating from scratch, and
//!   validating cold — report for report, byte for byte;
//! * runs [`plan`](rcdc::RolloutPlanner::plan) and audits the answer
//!   by brute force: every prefix state of a safe plan must be free of
//!   disallowed condition-matching violations (with the allowed set —
//!   baseline plus, when accepted, final-state violations — itself
//!   recomputed from brute states), and an unsafe verdict's minimal
//!   change set must fail by brute force while every
//!   remove-one subset passes;
//! * replays the plan serial and parallel — the verdict, step for
//!   step, must not depend on the thread count.

use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use bgpsim::{simulate, DeviceOverride};
use dctopo::generator::figure3;
use dctopo::{build_clos, ClosParams, DeviceId, LinkState, MetadataService};
use rcdc::report::risk_of;
use rcdc::rollout::{seeded_scenario, RolloutScenario};
use rcdc::{
    ConfigChange, FailCondition, ManagedNetwork, PlanOptions, PlanVerdict, Risk, RolloutPlanner,
    ValidationReport, Validator, Violation, ViolationReason,
};
use std::collections::HashSet;

/// The oracle's own reading of a fail condition, recomputed from raw
/// violations (independent of the planner's accounting).
fn violation_matches(v: &Violation, condition: FailCondition, meta: &MetadataService) -> bool {
    match condition {
        FailCondition::AnyViolation => true,
        FailCondition::Blackhole => matches!(v.reason, ViolationReason::MissingDefault),
        FailCondition::AtLeast(min) => risk_of(v, meta) >= min,
    }
}

/// Brute force: apply the change subset to a clone of production,
/// re-simulate the whole fabric from scratch, validate cold.
fn brute_reports(
    net: &ManagedNetwork,
    validator: &rcdc::validator::Validator,
    changes: &[ConfigChange],
) -> Vec<ValidationReport> {
    let mut m = net.clone();
    for c in changes {
        m.apply(c);
    }
    validator.run(&simulate(&m.topology, &m.config)).reports
}

/// Disallowed condition-matching violations in a brute state.
fn transient_count(
    reports: &[ValidationReport],
    condition: FailCondition,
    meta: &MetadataService,
    allowed: &HashSet<Violation>,
) -> usize {
    reports
        .iter()
        .flat_map(|r| &r.violations)
        .filter(|v| violation_matches(v, condition, meta) && !allowed.contains(v))
        .count()
}

/// One subset, planner vs brute force. Returns the first disagreement.
fn check_subset_case(
    planner: &RolloutPlanner,
    validator: &rcdc::validator::Validator,
    net: &ManagedNetwork,
    subset: &[ConfigChange],
) -> Option<String> {
    let incremental = match planner.state_reports(subset) {
        Ok(r) => r,
        Err(e) => return Some(format!("state_reports rejected a valid subset: {e}")),
    };
    let brute = brute_reports(net, validator, subset);
    if incremental != brute {
        let first = incremental
            .iter()
            .zip(&brute)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(format!(
            "incremental state reports diverge from cold re-simulation at device {first}: \
             {:?} vs {:?}",
            incremental[first].violations, brute[first].violations
        ));
    }
    None
}

fn render(net: &ManagedNetwork, changes: &[ConfigChange]) -> String {
    let mut s = format!("fabric: {} devices\nchanges:\n", net.topology.len());
    for c in changes {
        match c {
            ConfigChange::SetLinkState { link, state } => {
                let l = &net.topology.links()[link.0 as usize];
                s.push_str(&format!(
                    "  {:?} {} <-> {}\n",
                    state,
                    net.topology.device(l.lo).name,
                    net.topology.device(l.hi).name
                ));
            }
            ConfigChange::SetOverride { device, config } => {
                s.push_str(&format!(
                    "  override {} = {config:?}\n",
                    net.topology.device(*device).name
                ));
            }
        }
    }
    s
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let topology = if r.chance(1, 2) {
        figure3().topology
    } else {
        let leaves = r.range(2, 4) as u32;
        build_clos(&ClosParams {
            clusters: r.range(1, 3) as u32,
            tors_per_cluster: r.range(2, 4) as u32,
            leaves_per_cluster: leaves,
            spines: leaves * r.range(1, 3) as u32,
            regional_spines: r.range(1, 3) as u32,
            regional_groups: 1,
            prefixes_per_tor: 1,
        })
    };
    let scenario = if r.chance(1, 2) {
        RolloutScenario::Migrate
    } else {
        RolloutScenario::Decommission
    };
    let (mut net, mut changes) = seeded_scenario(&topology, scenario, 1, r.below(1 << 32));
    // Sometimes production is already degraded (pre-existing
    // violations exercise the allowed-set semantics).
    if r.chance(1, 4) {
        let untouched: Vec<_> = net
            .topology
            .links()
            .iter()
            .filter(|l| {
                !changes.iter().any(
                    |c| matches!(c, ConfigChange::SetLinkState { link, .. } if *link == l.id),
                )
            })
            .map(|l| l.id)
            .collect();
        if !untouched.is_empty() {
            let id = *r.pick(&untouched);
            net.topology.set_link_state(id, LinkState::OperDown);
        }
    }
    // Mix in 0-2 device overrides (distinct targets, sometimes no-ops).
    let n = net.topology.len() as u64;
    for _ in 0..r.below(3) {
        let device = DeviceId(r.below(n) as u32);
        if changes
            .iter()
            .any(|c| matches!(c, ConfigChange::SetOverride { device: d, .. } if *d == device))
        {
            continue;
        }
        let config = match r.below(3) {
            0 => DeviceOverride::default(),
            1 => DeviceOverride {
                reject_default_import: true,
                ..DeviceOverride::default()
            },
            _ => DeviceOverride {
                max_ecmp: Some(r.range(1, 3) as usize),
                ..DeviceOverride::default()
            },
        };
        changes.push(ConfigChange::SetOverride { device, config });
    }

    let meta = MetadataService::from_topology(&net.topology);
    let planner = Validator::new(&meta).build_planner(&net);
    let validator = Validator::new(&meta).build();

    // Random subsets: incremental state evaluation vs brute force.
    for _ in 0..4 {
        let subset: Vec<ConfigChange> = changes
            .iter()
            .filter(|_| r.chance(1, 2))
            .cloned()
            .collect();
        if let Some(summary) = check_subset_case(&planner, &validator, &net, &subset) {
            let minimized = shrink_list(&subset, |sub| {
                check_subset_case(&planner, &validator, &net, sub).is_some()
            });
            return Err(Failure {
                summary,
                minimized: render(&net, &minimized),
            });
        }
    }

    // One full plan, audited against brute-force state evaluation.
    let condition = *r.pick(&[
        FailCondition::AnyViolation,
        FailCondition::Blackhole,
        FailCondition::AtLeast(Risk::High),
    ]);
    let accept_final = r.chance(3, 4);
    let opts = PlanOptions {
        condition,
        accept_final,
        threads: r.range(1, 5) as usize,
        ..PlanOptions::default()
    };
    let report = match planner.plan(&changes, &opts) {
        Ok(rep) => rep,
        Err(e) => {
            return Err(Failure {
                summary: format!("plan rejected a valid change set: {e}"),
                minimized: render(&net, &changes),
            })
        }
    };
    let mut allowed: HashSet<Violation> = brute_reports(&net, &validator, &[])
        .iter()
        .flat_map(|r| r.violations.iter().cloned())
        .collect();
    if accept_final {
        allowed.extend(
            brute_reports(&net, &validator, &changes)
                .iter()
                .flat_map(|r| r.violations.iter().cloned()),
        );
    }
    match &report.verdict {
        PlanVerdict::Safe(steps) => {
            // Every prefix state of the emitted order must be clean by
            // brute force.
            let ordered: Vec<ConfigChange> =
                steps.iter().map(|s| s.change.clone()).collect();
            for cut in 0..=ordered.len() {
                let brute = brute_reports(&net, &validator, &ordered[..cut]);
                let transient = transient_count(&brute, condition, &meta, &allowed);
                if transient > 0 {
                    return Err(Failure {
                        summary: format!(
                            "safe plan has {transient} disallowed violation(s) after step {cut} \
                             by brute force"
                        ),
                        minimized: render(&net, &ordered[..cut]),
                    });
                }
            }
        }
        PlanVerdict::Unsafe(u) => {
            if report.search_exhausted {
                // The minimal unsafe change set must fail by brute
                // force and be 1-minimal under brute force.
                let unsafe_set: Vec<ConfigChange> =
                    u.prefix.iter().map(|s| s.change.clone()).collect();
                let brute = brute_reports(&net, &validator, &unsafe_set);
                if transient_count(&brute, condition, &meta, &allowed) == 0 {
                    return Err(Failure {
                        summary: "reported unsafe change set passes under brute force".into(),
                        minimized: render(&net, &unsafe_set),
                    });
                }
                for skip in 0..unsafe_set.len() {
                    let sub: Vec<ConfigChange> = unsafe_set
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, c)| c.clone())
                        .collect();
                    let brute = brute_reports(&net, &validator, &sub);
                    if transient_count(&brute, condition, &meta, &allowed) > 0 {
                        return Err(Failure {
                            summary: format!(
                                "unsafe change set is not minimal: still fails without \
                                 element {skip} by brute force"
                            ),
                            minimized: render(&net, &sub),
                        });
                    }
                }
            }
        }
    }

    // Thread-count independence: the verdict — step for step — must
    // match between the serial and parallel drivers.
    let serial = planner
        .plan(&changes, &PlanOptions { threads: 1, ..opts.clone() })
        .map_err(|e| Failure {
            summary: format!("serial replay errored: {e}"),
            minimized: render(&net, &changes),
        })?;
    let parallel = planner
        .plan(&changes, &PlanOptions { threads: 4, ..opts.clone() })
        .map_err(|e| Failure {
            summary: format!("parallel replay errored: {e}"),
            minimized: render(&net, &changes),
        })?;
    if serial.verdict != parallel.verdict {
        return Err(Failure {
            summary: format!(
                "plan verdict depends on thread count: serial {} vs parallel {}",
                serial.verdict, parallel.verdict
            ),
            minimized: render(&net, &changes),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_cross_check_is_clean_on_fig3_migration() {
        let f = figure3();
        let (net, changes) = seeded_scenario(&f.topology, RolloutScenario::Migrate, 1, 0);
        let meta = MetadataService::from_topology(&net.topology);
        let planner = Validator::new(&meta).build_planner(&net);
        let validator = Validator::new(&meta).build();
        for subset in [&changes[..0], &changes[..2], &changes[..]] {
            assert_eq!(check_subset_case(&planner, &validator, &net, subset), None);
        }
    }

    #[test]
    fn first_seed_is_clean() {
        assert!(run(0).is_ok());
    }

    #[test]
    fn degraded_production_uses_config_not_healthy() {
        // brute_reports must simulate with the production SimConfig,
        // not a fresh healthy one.
        let f = figure3();
        let mut net = ManagedNetwork::new(f.topology.clone());
        net.config = std::mem::take(&mut net.config).with_default_reject(f.tors[0]);
        let meta = MetadataService::from_topology(&net.topology);
        let validator = Validator::new(&meta).build();
        let brute = brute_reports(&net, &validator, &[]);
        assert!(brute.iter().any(|r| !r.violations.is_empty()));
    }
}
