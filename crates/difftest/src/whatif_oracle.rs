//! Oracle: incremental what-if scenario evaluation vs brute force.
//!
//! The k-failure sweeper ([`rcdc::WhatIfSweeper`]) gets its speed from
//! two reuse layers — the fault-injected fixed-point restart and
//! delta-only revalidation with a cross-scenario verdict memo. Both
//! must be invisible in the verdicts. This oracle builds a small
//! seeded fabric (Figure 3 or a tiny random Clos, optionally already
//! degraded, under a random fault-injection config), then:
//!
//! * cross-checks random failure scenarios: the sweeper's incremental
//!   evaluation against full re-simulation from scratch plus a cold
//!   validation pass — report for report, byte for byte, and
//!   condition verdict for condition verdict (the condition logic is
//!   reimplemented here from the violation reports, so the sweeper's
//!   accounting is checked too);
//! * runs an exhaustive sweep and checks the answer: a counterexample
//!   must fail by brute force and be 1-minimal under brute force; a
//!   `Robust(k)` certificate is spot-checked against brute force on
//!   random scenarios of size `<= k`;
//! * replays the same sweep serial and parallel — the verdict,
//!   including the exact minimized counterexample, must not depend on
//!   the thread count.

use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use bgpsim::{simulate, FaultSpec, SimConfig};
use dctopo::generator::figure3;
use dctopo::{build_clos, ClosParams, DeviceId, LinkState, MetadataService, Topology};
use rcdc::report::risk_of;
use rcdc::{
    FailCondition, FailureElement, Risk, RobustnessVerdict, SweepOptions, Validator,
    ValidationReport, Violation, ViolationReason, WhatIfSweeper,
};

/// A replayable fabric choice.
#[derive(Debug, Clone)]
enum Fabric {
    Figure3,
    Clos(ClosParams),
}

impl Fabric {
    fn build(&self) -> Topology {
        match self {
            Fabric::Figure3 => figure3().topology,
            Fabric::Clos(p) => build_clos(p),
        }
    }
}

/// A replayable config fault.
#[derive(Debug, Clone)]
enum ConfigFault {
    DefaultReject(u32),
    MaxEcmp(u32, usize),
    RibFib(u32, usize),
    L2Port(u32),
}

fn apply_faults(mut config: SimConfig, faults: &[ConfigFault]) -> SimConfig {
    for f in faults {
        config = match *f {
            ConfigFault::DefaultReject(d) => config.with_default_reject(DeviceId(d)),
            ConfigFault::MaxEcmp(d, k) => config.with_max_ecmp(DeviceId(d), k),
            ConfigFault::RibFib(d, h) => config.with_rib_fib_bug(DeviceId(d), h),
            ConfigFault::L2Port(d) => config.with_l2_port_bug(DeviceId(d)),
        };
    }
    config
}

/// The oracle's own reading of a fail condition, recomputed from raw
/// violation reports (independent of the sweeper's accounting).
fn violation_matches(v: &Violation, condition: FailCondition, meta: &MetadataService) -> bool {
    match condition {
        FailCondition::AnyViolation => true,
        FailCondition::Blackhole => matches!(v.reason, ViolationReason::MissingDefault),
        FailCondition::AtLeast(min) => risk_of(v, meta) >= min,
    }
}

fn matching_total(
    reports: &[ValidationReport],
    condition: FailCondition,
    meta: &MetadataService,
) -> usize {
    reports
        .iter()
        .flat_map(|r| &r.violations)
        .filter(|v| violation_matches(v, condition, meta))
        .count()
}

/// Brute force: down the scenario's elements on a topology clone,
/// re-simulate the whole fabric from scratch, validate cold.
fn brute_reports(
    topology: &Topology,
    config: &SimConfig,
    validator: &rcdc::validator::Validator,
    elems: &[FailureElement],
) -> Vec<ValidationReport> {
    let mut fault = FaultSpec::default();
    for e in elems {
        match e {
            FailureElement::Link(l) => fault.links.push(*l),
            FailureElement::Device(d) => fault.devices.push(*d),
        }
    }
    let mut faulted = topology.clone();
    fault.apply(&mut faulted);
    validator.run(&simulate(&faulted, config)).reports
}

/// One scenario, incremental vs brute force. Returns the first
/// disagreement.
fn check_scenario_case(
    sweeper: &WhatIfSweeper,
    validator: &rcdc::validator::Validator,
    topology: &Topology,
    config: &SimConfig,
    meta: &MetadataService,
    condition: FailCondition,
    elems: &[FailureElement],
) -> Option<String> {
    let check = sweeper.check_scenario(elems, condition);
    let incremental = sweeper.spliced_reports(&check);
    let brute = brute_reports(topology, config, validator, elems);
    if incremental != brute {
        let first = incremental
            .iter()
            .zip(&brute)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(format!(
            "incremental reports diverge from cold re-simulation at device {first}: \
             {:?} vs {:?}",
            incremental[first].violations, brute[first].violations
        ));
    }
    let want = matching_total(&brute, condition, meta);
    if check.matching_violations != want {
        return Some(format!(
            "sweeper counts {} condition-matching violations, reports hold {want}",
            check.matching_violations
        ));
    }
    if check.fails != (want > 0) {
        return Some(format!(
            "sweeper verdict fails={} but {want} matching violations exist",
            check.fails
        ));
    }
    None
}

/// The sweep's end-to-end answer vs brute force.
fn check_sweep_case(
    sweeper: &WhatIfSweeper,
    validator: &rcdc::validator::Validator,
    topology: &Topology,
    config: &SimConfig,
    meta: &MetadataService,
    opts: &SweepOptions,
    r: &mut Rng,
) -> Option<String> {
    let report = sweeper.sweep(opts);
    match &report.verdict {
        RobustnessVerdict::Counterexample(c) => {
            let brute = brute_reports(topology, config, validator, &c.scenario);
            if matching_total(&brute, opts.condition, meta) == 0 {
                return Some(format!(
                    "counterexample {:?} passes under brute force",
                    c.scenario
                ));
            }
            // 1-minimality must also hold by brute force.
            for skip in 0..c.scenario.len() {
                let mut sub = c.scenario.clone();
                sub.remove(skip);
                let brute = brute_reports(topology, config, validator, &sub);
                if matching_total(&brute, opts.condition, meta) > 0 {
                    return Some(format!(
                        "counterexample {:?} is not minimal: still fails without {:?}",
                        c.scenario, c.scenario[skip]
                    ));
                }
            }
        }
        RobustnessVerdict::Robust(k) => {
            // Spot-check the certificate: random in-budget scenarios
            // must pass by brute force (enumeration was exhaustive for
            // the sizes this oracle sweeps).
            let universe = sweeper.universe(opts.include_devices);
            for _ in 0..4 {
                let size = r.range(1, (*k).max(1) as u64 + 1) as usize;
                let mut elems: Vec<FailureElement> = Vec::new();
                while elems.len() < size.min(universe.len()) {
                    let e = *r.pick(&universe);
                    if !elems.contains(&e) {
                        elems.push(e);
                    }
                }
                let brute = brute_reports(topology, config, validator, &elems);
                if matching_total(&brute, opts.condition, meta) > 0 {
                    return Some(format!(
                        "sweep certified Robust({k}) but {elems:?} fails by brute force"
                    ));
                }
            }
        }
    }
    // Thread-count independence: the verdict — including the exact
    // minimized counterexample — must match between serial and
    // parallel drivers.
    let serial = sweeper.sweep(&SweepOptions {
        threads: 1,
        ..opts.clone()
    });
    let parallel = sweeper.sweep(&SweepOptions {
        threads: 4,
        ..opts.clone()
    });
    if serial.verdict != parallel.verdict {
        return Some(format!(
            "sweep verdict depends on thread count: serial {:?} vs parallel {:?}",
            serial.verdict, parallel.verdict
        ));
    }
    None
}

fn render(
    fabric: &Fabric,
    faults: &[ConfigFault],
    condition: FailCondition,
    scenario: &[FailureElement],
    topology: &Topology,
) -> String {
    let mut s = format!("fabric: {fabric:?}\nconfig faults: {faults:?}\ncondition: {condition}\n");
    s.push_str("scenario:\n");
    for e in scenario {
        s.push_str(&format!("  {} ({e:?})\n", e.render(topology)));
    }
    s
}

fn random_fabric(r: &mut Rng) -> Fabric {
    if r.chance(1, 2) {
        Fabric::Figure3
    } else {
        // Spines must spread evenly across the leaf planes.
        let leaves = r.range(2, 4) as u32;
        Fabric::Clos(ClosParams {
            clusters: r.range(1, 3) as u32,
            tors_per_cluster: r.range(2, 4) as u32,
            leaves_per_cluster: leaves,
            spines: leaves * r.range(1, 3) as u32,
            regional_spines: r.range(1, 3) as u32,
            regional_groups: 1,
            prefixes_per_tor: r.range(1, 3) as u32,
        })
    }
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let fabric = random_fabric(&mut r);
    let mut topology = fabric.build();
    // Sometimes the fabric is already degraded before the sweep.
    if r.chance(1, 4) {
        let id = topology.links()[r.below(topology.links().len() as u64) as usize].id;
        topology.set_link_state(id, LinkState::OperDown);
    }
    let n = topology.len() as u64;
    let faults: Vec<ConfigFault> = (0..r.below(3))
        .map(|_| match r.below(4) {
            0 => ConfigFault::DefaultReject(r.below(n) as u32),
            1 => ConfigFault::MaxEcmp(r.below(n) as u32, r.range(1, 3) as usize),
            2 => ConfigFault::RibFib(r.below(n) as u32, r.range(1, 3) as usize),
            _ => ConfigFault::L2Port(r.below(n) as u32),
        })
        .collect();
    let config = apply_faults(SimConfig::healthy(), &faults);
    let condition = *r.pick(&[
        FailCondition::AnyViolation,
        FailCondition::Blackhole,
        FailCondition::AtLeast(Risk::High),
    ]);

    let meta = MetadataService::from_topology(&topology);
    let sweeper = Validator::new(&meta).build_whatif(&topology, &config);
    let validator = Validator::new(&meta).build();
    let include_devices = r.chance(1, 2);
    let universe = sweeper.universe(include_devices);

    // Random scenarios: incremental vs brute force.
    for _ in 0..5 {
        let size = r.below(4) as usize;
        let mut elems: Vec<FailureElement> = Vec::new();
        while elems.len() < size.min(universe.len()) {
            let e = *r.pick(&universe);
            if !elems.contains(&e) {
                elems.push(e);
            }
        }
        if let Some(summary) =
            check_scenario_case(&sweeper, &validator, &topology, &config, &meta, condition, &elems)
        {
            let minimized = shrink_list(&elems, |sub| {
                check_scenario_case(
                    &sweeper, &validator, &topology, &config, &meta, condition, sub,
                )
                .is_some()
            });
            return Err(Failure {
                summary,
                minimized: render(&fabric, &faults, condition, &minimized, &topology),
            });
        }
    }

    // One full sweep: k=2 stays exhaustive when the universe is small
    // enough to afford it, k=1 otherwise.
    let k = if universe.len() <= 30 && r.chance(1, 3) {
        2
    } else {
        1
    };
    let opts = SweepOptions {
        k,
        include_devices,
        condition,
        threads: r.range(1, 5) as usize,
        ..SweepOptions::default()
    };
    if let Some(summary) =
        check_sweep_case(&sweeper, &validator, &topology, &config, &meta, &opts, &mut r)
    {
        return Err(Failure {
            summary,
            minimized: render(&fabric, &faults, condition, &[], &topology),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_cross_check_is_clean_on_fig3() {
        let f = figure3();
        let meta = MetadataService::from_topology(&f.topology);
        let config = SimConfig::healthy();
        let sweeper = Validator::new(&meta).build_whatif(&f.topology, &config);
        let validator = Validator::new(&meta).build();
        let l1 = FailureElement::Link(f.topology.link_between(f.tors[0], f.a[0]).unwrap().id);
        let dev = FailureElement::Device(f.a[1]);
        for scenario in [vec![], vec![l1], vec![l1, dev]] {
            assert_eq!(
                check_scenario_case(
                    &sweeper,
                    &validator,
                    &f.topology,
                    &config,
                    &meta,
                    FailCondition::AnyViolation,
                    &scenario,
                ),
                None
            );
        }
    }

    #[test]
    fn first_seed_is_clean() {
        assert!(run(0).is_ok());
    }
}
