//! Oracle: the wire codec under round trips, truncation, and mutation.
//!
//! The codec has no padding and no redundant encodings, so two exact
//! invariants hold and are checked here:
//!
//! * `decode(encode(x)) == x` for every value;
//! * for arbitrary bytes, `decode` either fails cleanly or returns a
//!   value whose re-encoding is byte-for-byte the input (canonicity) —
//!   in particular every strict truncation of a valid encoding fails.
//!
//! Decoded snapshots are additionally pushed through `Fib::from_wire`
//! to make sure a hostile snapshot can be rejected but never panic the
//! store.

use crate::rng::Rng;
use crate::Failure;
use bgpsim::Fib;
use netprim::wire::{DeltaRule, FibDelta, WireEntry, WireSnapshot};
use netprim::{Ipv4, Prefix};

fn random_prefix(r: &mut Rng) -> Prefix {
    let len = r.range(0, 32) as u8;
    Prefix::containing(Ipv4(r.next_u64() as u32), len).expect("len <= 32")
}

fn random_hops(r: &mut Rng) -> Vec<Ipv4> {
    (0..r.range(0, 3)).map(|_| Ipv4(r.next_u64() as u32)).collect()
}

fn random_snapshot(r: &mut Rng) -> WireSnapshot {
    WireSnapshot {
        device: r.below(1 << 16) as u32,
        entries: (0..r.range(0, 8))
            .map(|_| WireEntry {
                prefix: random_prefix(r),
                next_hops: random_hops(r),
            })
            .collect(),
    }
}

fn random_delta(r: &mut Rng) -> FibDelta {
    let rule = |r: &mut Rng| DeltaRule {
        prefix: random_prefix(r),
        next_hops: random_hops(r),
        local: r.chance(1, 4),
    };
    FibDelta {
        device: r.below(1 << 16) as u32,
        base_hash: r.next_u64(),
        new_hash: r.next_u64(),
        added: (0..r.range(0, 4)).map(|_| rule(r)).collect(),
        modified: (0..r.range(0, 4)).map(|_| rule(r)).collect(),
        removed: (0..r.range(0, 4)).map(|_| random_prefix(r)).collect(),
    }
}

/// The canonicity invariant on arbitrary bytes, for one codec.
fn check_mutated<T, D, E>(bytes: &[u8], decode: D, encode: E, what: &str) -> Option<String>
where
    D: Fn(&[u8]) -> Result<T, netprim::ParseError>,
    E: Fn(&T) -> Vec<u8>,
{
    if let Ok(v) = decode(bytes) {
        let re = encode(&v);
        if re != bytes {
            return Some(format!(
                "{what}: mutated bytes decoded to a value that re-encodes differently \
                 ({} vs {} bytes, first diff at {:?})",
                re.len(),
                bytes.len(),
                re.iter().zip(bytes).position(|(a, b)| a != b)
            ));
        }
    }
    None
}

fn mutate(r: &mut Rng, bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    for _ in 0..r.range(1, 4) {
        let i = r.below(bytes.len() as u64) as usize;
        bytes[i] ^= (1 << r.below(8)) as u8;
    }
}

fn check_snapshot(r: &mut Rng) -> Option<String> {
    let s = random_snapshot(r);
    let bytes = s.encode();

    match WireSnapshot::decode(&bytes) {
        Ok(back) if back == s => {}
        Ok(back) => return Some(format!("snapshot round trip changed value: {s:?} -> {back:?}")),
        Err(e) => return Some(format!("snapshot failed to decode its own encoding: {e}")),
    }
    for cut in 0..bytes.len() {
        if WireSnapshot::decode(&bytes[..cut]).is_ok() {
            return Some(format!(
                "snapshot truncated to {cut}/{} bytes decoded successfully",
                bytes.len()
            ));
        }
    }
    for _ in 0..8 {
        let mut m = bytes.to_vec();
        mutate(r, &mut m);
        if let Some(msg) = check_mutated(
            &m,
            WireSnapshot::decode,
            |v: &WireSnapshot| v.encode().to_vec(),
            "snapshot",
        ) {
            return Some(msg);
        }
        // The store-side constructor must reject or accept, never panic,
        // and an accepted table must re-export only entries it was given.
        if let Ok(snap) = WireSnapshot::decode(&m) {
            if let Ok(fib) = Fib::from_wire(&snap) {
                if fib.len() != snap.entries.len() {
                    return Some(format!(
                        "from_wire accepted a snapshot with {} entries but kept {}",
                        snap.entries.len(),
                        fib.len()
                    ));
                }
            }
        }
    }
    None
}

fn check_delta(r: &mut Rng) -> Option<String> {
    let d = random_delta(r);
    let bytes = d.encode();

    match FibDelta::decode(&bytes) {
        Ok(back) if back == d => {}
        Ok(back) => return Some(format!("delta round trip changed value: {d:?} -> {back:?}")),
        Err(e) => return Some(format!("delta failed to decode its own encoding: {e}")),
    }
    for cut in 0..bytes.len() {
        if FibDelta::decode(&bytes[..cut]).is_ok() {
            return Some(format!(
                "delta truncated to {cut}/{} bytes decoded successfully",
                bytes.len()
            ));
        }
    }
    for _ in 0..8 {
        let mut m = bytes.to_vec();
        mutate(r, &mut m);
        if let Some(msg) = check_mutated(
            &m,
            FibDelta::decode,
            |v: &FibDelta| v.encode().to_vec(),
            "delta",
        ) {
            return Some(msg);
        }
    }
    // The two formats must not be confusable.
    if FibDelta::decode(&WireSnapshot::encode(&random_snapshot(r))).is_ok() {
        return Some("a snapshot decoded as a delta".into());
    }
    None
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    if let Some(summary) = check_snapshot(&mut r).or_else(|| check_delta(&mut r)) {
        // The codec cases are already tiny; the seed itself is the
        // minimized reproduction.
        return Err(Failure {
            summary,
            minimized: "(wire case fully determined by seed; rerun with --seed)".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_sweep_is_clean() {
        for seed in 0..32 {
            assert!(run(seed).is_ok(), "wire oracle failed at seed {seed}");
        }
    }
}
