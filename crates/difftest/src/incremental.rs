//! Oracle: incremental revalidation vs full revalidation over churn.
//!
//! A random FIB evolves through a chain of add/remove/modify steps —
//! the §2.6.1 continuous-monitoring workload. At every step the delta
//! is computed, pushed through the wire codec (as it would travel from
//! the device), applied, and handed to `validate_delta` with the
//! previous step's report as `prior`. The incremental report must equal
//! a from-scratch `validate_device` pass violation for violation, for
//! both trie modes — any drift means stale verdicts survive churn.

use crate::gen::{
    build_contracts, build_fib, random_contract_specs, random_fib_specs, random_hops,
    random_prefix, render_case, ContractSpec, FibSpec,
};
use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use bgpsim::Fib;
use netprim::wire::FibDelta;
use rcdc::{Engine, SmtEngine, TrieEngine};

/// One churn step, as replayable data.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    /// Insert (or overwrite) a rule.
    Upsert(FibSpec),
    /// Remove the rule at this index (modulo current table size).
    Remove(usize),
}

fn random_step(r: &mut Rng) -> Step {
    if r.chance(1, 3) {
        Step::Remove(r.below(64) as usize)
    } else {
        let local = r.chance(1, 8);
        Step::Upsert(FibSpec {
            prefix: random_prefix(r, 24, true),
            hops: if local { Vec::new() } else { random_hops(r) },
            local,
        })
    }
}

fn apply_step(specs: &mut Vec<FibSpec>, step: &Step) {
    match step {
        Step::Upsert(s) => {
            specs.retain(|e| e.prefix != s.prefix);
            specs.push(s.clone());
        }
        Step::Remove(i) => {
            if !specs.is_empty() {
                let i = i % specs.len();
                specs.remove(i);
            }
        }
    }
}

/// Walk the churn chain, cross-checking at every step. Returns the
/// first disagreement.
fn check_chain(
    initial: &[FibSpec],
    contracts: &[ContractSpec],
    steps: &[Step],
) -> Option<String> {
    let device = dctopo::DeviceId(0);
    let dcs = build_contracts(device, contracts);
    let engines: [(&str, &dyn Engine); 3] = [
        ("trie-strict", &TrieEngine::new()),
        ("trie-semantic", &TrieEngine::semantic()),
        ("smt-strict", &SmtEngine::new()),
    ];

    let mut specs = initial.to_vec();
    let mut fib = build_fib(device, &specs);
    let mut priors: Vec<_> = engines
        .iter()
        .map(|(_, e)| e.validate_device(&fib, &dcs))
        .collect();

    for (step_no, step) in steps.iter().enumerate() {
        apply_step(&mut specs, step);
        let new_fib = build_fib(device, &specs);

        // The delta travels over the wire before it is applied.
        let delta = Fib::delta(&fib, &new_fib);
        let delta = match FibDelta::decode(&delta.encode()) {
            Ok(d) => d,
            Err(e) => return Some(format!("step {step_no}: delta round trip failed: {e}")),
        };
        let applied = match fib.apply_delta(&delta) {
            Ok(f) => f,
            Err(e) => return Some(format!("step {step_no}: apply_delta failed: {e}")),
        };
        if applied.content_hash() != new_fib.content_hash() {
            return Some(format!(
                "step {step_no}: apply_delta produced hash {:#x}, rebuild has {:#x}",
                applied.content_hash(),
                new_fib.content_hash()
            ));
        }

        for ((name, engine), prior) in engines.iter().zip(priors.iter_mut()) {
            let full = engine.validate_device(&new_fib, &dcs);
            let incr = engine.validate_delta(&new_fib, &dcs, &delta, prior);
            if incr != full {
                return Some(format!(
                    "step {step_no}: {name} incremental report differs from full \
                     (incremental {:?} vs full {:?})",
                    incr.violations, full.violations
                ));
            }
            *prior = incr;
        }
        fib = new_fib;
    }
    None
}

fn render(initial: &[FibSpec], contracts: &[ContractSpec], steps: &[Step]) -> String {
    let mut s = render_case(initial, contracts);
    s.push_str("churn steps:\n");
    for st in steps {
        s.push_str(&format!("  {st:?}\n"));
    }
    s
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let initial = random_fib_specs(&mut r, 10);
    let contracts = random_contract_specs(&mut r, 5);
    let steps: Vec<Step> = (0..r.range(3, 6)).map(|_| random_step(&mut r)).collect();

    if let Some(summary) = check_chain(&initial, &contracts, &steps) {
        // Shrink the chain first (fewer steps usually isolates the
        // culprit), then the starting state, then the contracts.
        let steps_min = shrink_list(&steps, |ss| {
            check_chain(&initial, &contracts, ss).is_some()
        });
        let initial_min = shrink_list(&initial, |is| {
            check_chain(is, &contracts, &steps_min).is_some()
        });
        let contracts_min = shrink_list(&contracts, |cs| {
            check_chain(&initial_min, cs, &steps_min).is_some()
        });
        return Err(Failure {
            summary,
            minimized: render(&initial_min, &contracts_min, &steps_min),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netprim::{Ipv4, Prefix};
    use rcdc::ContractKind;

    #[test]
    fn empty_chain_is_clean() {
        assert_eq!(check_chain(&[], &[], &[]), None);
    }

    #[test]
    fn default_route_churn_stays_consistent() {
        let hops = vec![Ipv4(0x1e00_0001)];
        let contracts = vec![ContractSpec {
            prefix: Prefix::DEFAULT,
            kind: ContractKind::Default,
            expected: Some(hops.clone()),
        }];
        let steps = vec![
            Step::Upsert(FibSpec {
                prefix: Prefix::DEFAULT,
                hops: hops.clone(),
                local: false,
            }),
            Step::Remove(0),
            Step::Upsert(FibSpec {
                prefix: Prefix::DEFAULT,
                hops: vec![Ipv4(0x1e00_0002)],
                local: false,
            }),
        ];
        assert_eq!(check_chain(&[], &contracts, &steps), None);
    }
}
