//! Oracle: the CDCL SAT solver vs brute-force enumeration.
//!
//! Random small CNF instances are solved plain, under assumptions, and
//! incrementally (clauses added between queries), with every verdict
//! checked against 2^n enumeration and every SAT model re-evaluated
//! clause by clause. Structured pigeonhole instances with analytically
//! known verdicts push the solver into restarts and deep conflict
//! analysis — the regime where the historical false-UNSAT below the
//! assumption frontier lived (see `smtkit::sat`'s regression tests).

use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use smtkit::{Lit, SatResult, SatSolver, Var};

/// A literal as a signed 1-based variable index (DIMACS style), so
/// minimized cases print in the notation regression tests use.
type DLit = i32;

fn to_lit(d: DLit) -> Lit {
    let v = Var(d.unsigned_abs() - 1);
    if d < 0 {
        Lit::neg(v)
    } else {
        Lit::pos(v)
    }
}

#[derive(Debug, Clone)]
struct SatCase {
    num_vars: u32,
    /// Clauses present before the first query.
    clauses: Vec<Vec<DLit>>,
    /// Assumptions for the first `solve_with` query.
    assumptions: Vec<DLit>,
    /// Clauses added incrementally before the second round of queries.
    additions: Vec<Vec<DLit>>,
    /// Assumptions for the second `solve_with` query.
    assumptions2: Vec<DLit>,
}

/// Brute-force verdict over all assignments, with assumptions treated
/// as unit constraints.
fn brute(num_vars: u32, clauses: &[Vec<DLit>], assumptions: &[DLit]) -> SatResult {
    let sat_under = |bits: u32, lits: &[DLit]| {
        lits.iter()
            .any(|&d| ((bits >> (d.unsigned_abs() - 1)) & 1 == 1) == (d > 0))
    };
    for bits in 0u32..(1u32 << num_vars) {
        if assumptions
            .iter()
            .all(|&a| ((bits >> (a.unsigned_abs() - 1)) & 1 == 1) == (a > 0))
            && clauses.iter().all(|c| sat_under(bits, c))
        {
            return SatResult::Sat;
        }
    }
    SatResult::Unsat
}

/// A model reported by the solver must actually satisfy the instance.
fn model_violation(
    s: &SatSolver,
    clauses: &[Vec<DLit>],
    assumptions: &[DLit],
) -> Option<String> {
    let holds = |d: DLit| s.model_value(Var(d.unsigned_abs() - 1)) == (d > 0);
    for c in clauses {
        if !c.iter().copied().any(holds) {
            return Some(format!("model does not satisfy clause {c:?}"));
        }
    }
    for &a in assumptions {
        if !holds(a) {
            return Some(format!("model does not satisfy assumption {a}"));
        }
    }
    None
}

/// Run the full query sequence of a case and report the first
/// disagreement with brute force, if any.
fn check_case(case: &SatCase) -> Option<String> {
    let mut s = SatSolver::new();
    for _ in 0..case.num_vars {
        s.new_var();
    }
    for c in &case.clauses {
        let lits: Vec<Lit> = c.iter().map(|&d| to_lit(d)).collect();
        s.add_clause(&lits);
    }

    // Query 1: under assumptions.
    let got = s.solve_with(&case.assumptions.iter().map(|&d| to_lit(d)).collect::<Vec<_>>());
    let want = brute(case.num_vars, &case.clauses, &case.assumptions);
    if got != want {
        return Some(format!(
            "solve_with({:?}) = {:?}, brute force says {:?}",
            case.assumptions, got, want
        ));
    }
    if got == SatResult::Sat {
        if let Some(m) = model_violation(&s, &case.clauses, &case.assumptions) {
            return Some(format!("after solve_with: {m}"));
        }
    }

    // Query 2: same instance, no assumptions (the solver must fully
    // recover from the assumption frontier).
    let got = s.solve();
    let want = brute(case.num_vars, &case.clauses, &[]);
    if got != want {
        return Some(format!("solve() = {got:?}, brute force says {want:?}"));
    }
    if got == SatResult::Sat {
        if let Some(m) = model_violation(&s, &case.clauses, &[]) {
            return Some(format!("after solve: {m}"));
        }
    }

    // Query 3: add clauses incrementally (learned clauses and phase
    // state persist), then re-query under fresh assumptions.
    let mut all = case.clauses.clone();
    for c in &case.additions {
        let lits: Vec<Lit> = c.iter().map(|&d| to_lit(d)).collect();
        s.add_clause(&lits);
        all.push(c.clone());
    }
    let got = s.solve_with(
        &case
            .assumptions2
            .iter()
            .map(|&d| to_lit(d))
            .collect::<Vec<_>>(),
    );
    let want = brute(case.num_vars, &all, &case.assumptions2);
    if got != want {
        return Some(format!(
            "incremental solve_with({:?}) = {:?}, brute force says {:?}",
            case.assumptions2, got, want
        ));
    }
    if got == SatResult::Sat {
        if let Some(m) = model_violation(&s, &all, &case.assumptions2) {
            return Some(format!("after incremental solve_with: {m}"));
        }
    }
    None
}

fn random_lits(r: &mut Rng, num_vars: u32, len: u64) -> Vec<DLit> {
    (0..len)
        .map(|_| {
            let v = r.range(1, u64::from(num_vars)) as i32;
            if r.chance(1, 2) {
                v
            } else {
                -v
            }
        })
        .collect()
}

fn random_case(r: &mut Rng) -> SatCase {
    let num_vars = r.range(3, 12) as u32;
    let num_clauses = r.range(0, u64::from(num_vars) * 4);
    let clauses = (0..num_clauses)
        .map(|_| {
            let w = r.range(1, 3);
            random_lits(r, num_vars, w)
        })
        .collect();
    let num_additions = r.range(0, u64::from(num_vars));
    let additions = (0..num_additions)
        .map(|_| {
            let w = r.range(1, 3);
            random_lits(r, num_vars, w)
        })
        .collect();
    let n_a1 = r.range(0, 3);
    let assumptions = random_lits(r, num_vars, n_a1);
    let n_a2 = r.range(0, 3);
    let assumptions2 = random_lits(r, num_vars, n_a2);
    SatCase {
        num_vars,
        clauses,
        assumptions,
        additions,
        assumptions2,
    }
}

/// Pigeonhole principle: `pigeons` into `holes`. Variable `p*holes+h+1`
/// means "pigeon p sits in hole h". UNSAT iff `pigeons > holes`.
fn pigeonhole(pigeons: u32, holes: u32) -> (u32, Vec<Vec<DLit>>) {
    let var = |p: u32, h: u32| (p * holes + h + 1) as DLit;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    (pigeons * holes, clauses)
}

/// Structured instances with analytic verdicts: conflict-heavy enough
/// to force restarts and conflict analysis at depth (no brute force —
/// the verdict is a theorem).
fn check_pigeonhole(r: &mut Rng) -> Option<String> {
    let holes = r.range(4, 5) as u32;
    let (num_vars, clauses) = pigeonhole(holes + 1, holes);
    let mut s = SatSolver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in &clauses {
        let lits: Vec<Lit> = c.iter().map(|&d| to_lit(d)).collect();
        s.add_clause(&lits);
    }
    // Assumptions cannot rescue an unsatisfiable instance.
    let n_assumptions = r.range(0, 2);
    let assumptions = random_lits(r, num_vars, n_assumptions);
    let got = s.solve_with(&assumptions.iter().map(|&d| to_lit(d)).collect::<Vec<_>>());
    if got != SatResult::Unsat {
        return Some(format!(
            "pigeonhole({}, {holes}) under {assumptions:?} reported Sat",
            holes + 1
        ));
    }

    // The satisfiable diagonal: php(n, n) has a model; pinning one
    // pigeon by assumption keeps it satisfiable.
    let (num_vars, clauses) = pigeonhole(holes, holes);
    let mut s = SatSolver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in &clauses {
        let lits: Vec<Lit> = c.iter().map(|&d| to_lit(d)).collect();
        s.add_clause(&lits);
    }
    let pin = vec![(r.below(u64::from(holes)) as i32) + 1];
    let got = s.solve_with(&pin.iter().map(|&d| to_lit(d)).collect::<Vec<_>>());
    if got != SatResult::Sat {
        return Some(format!("pigeonhole({holes}, {holes}) under {pin:?} reported Unsat"));
    }
    if let Some(m) = model_violation(&s, &clauses, &pin) {
        return Some(format!("pigeonhole({holes}, {holes}): {m}"));
    }
    // Incrementally ban pigeon 0 from every hole: now UNSAT, and the
    // learned clauses from the SAT run must not poison the verdict.
    for h in 0..holes {
        s.add_clause(&[Lit::neg(Var(h))]);
    }
    if s.solve() != SatResult::Unsat {
        return Some(format!(
            "pigeonhole({holes}, {holes}) with pigeon 0 banned reported Sat"
        ));
    }
    None
}

fn render(case: &SatCase) -> String {
    format!(
        "vars: {}\nclauses: {:?}\nassumptions: {:?}\nadditions: {:?}\nassumptions2: {:?}",
        case.num_vars, case.clauses, case.assumptions, case.additions, case.assumptions2
    )
}

fn minimize(case: &SatCase) -> SatCase {
    let mut cur = case.clone();
    cur.clauses = shrink_list(&cur.clauses, |cs| {
        check_case(&SatCase {
            clauses: cs.to_vec(),
            ..cur.clone()
        })
        .is_some()
    });
    cur.additions = shrink_list(&cur.additions, |adds| {
        check_case(&SatCase {
            additions: adds.to_vec(),
            ..cur.clone()
        })
        .is_some()
    });
    cur.assumptions = shrink_list(&cur.assumptions, |a| {
        check_case(&SatCase {
            assumptions: a.to_vec(),
            ..cur.clone()
        })
        .is_some()
    });
    cur.assumptions2 = shrink_list(&cur.assumptions2, |a| {
        check_case(&SatCase {
            assumptions2: a.to_vec(),
            ..cur.clone()
        })
        .is_some()
    });
    cur
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let case = random_case(&mut r);
    if let Some(summary) = check_case(&case) {
        let min = minimize(&case);
        return Err(Failure {
            summary,
            minimized: render(&min),
        });
    }
    // Structured hard instances on a fraction of seeds (they cost more
    // than the small random cases).
    if r.chance(1, 8) {
        if let Some(summary) = check_pigeonhole(&mut r) {
            return Err(Failure {
                summary,
                minimized: "(structured pigeonhole instance; see summary)".into(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_agrees_with_itself() {
        // (1 ∨ 2) ∧ (-1) forces 2.
        let clauses = vec![vec![1, 2], vec![-1]];
        assert_eq!(brute(2, &clauses, &[]), SatResult::Sat);
        assert_eq!(brute(2, &clauses, &[-2]), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_shape() {
        let (vars, clauses) = pigeonhole(3, 2);
        assert_eq!(vars, 6);
        // 3 at-least-one clauses + 2 holes × C(3,2) exclusions.
        assert_eq!(clauses.len(), 3 + 2 * 3);
    }

    #[test]
    fn regression_seed_for_false_unsat_class() {
        // The minimized shape of the historical solve_with false UNSAT
        // (unit learned clause backjumping below the assumption
        // frontier), expressed as a difftest case: must stay green.
        let case = SatCase {
            num_vars: 3,
            clauses: vec![vec![1, 2], vec![1, -2]],
            assumptions: vec![3],
            additions: vec![],
            assumptions2: vec![],
        };
        assert_eq!(check_case(&case), None);
    }
}
