//! Oracle: SecGuru's three implementations of NSG semantics.
//!
//! A random policy pair (B is a small mutation of A) is judged three
//! ways: the SMT contract checker, the interval-algebra engine, and
//! concrete `Policy::allows` evaluated over an exhaustively enumerable
//! header universe. The universe is closed by construction — rule and
//! contract filters only use 16 addresses × 4 ports per side, and every
//! protocol behaves like one of `{0, 6, 17, 99}` (any header outside
//! matches exactly the `Any`-protocol rules, the class protocol 0
//! represents) — so the concrete sweep is a complete ground truth, not
//! a sample. Cross-checks: per-contract verdicts and witness validity
//! for both engines, and `semantic_diff` / `smt_confirms_equivalence`
//! against ground-truth policy equivalence.

use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use netprim::{HeaderSpace, HeaderTuple, IpRange, Ipv4, PortRange, Protocol};
use secguru::diff::{semantic_diff, smt_confirms_equivalence};
use secguru::{Action, Contract, Convention, IntervalEngine, Policy, Rule, SecGuru};

const IPS: u32 = 16;
const PORTS: u16 = 4;
const PROTOCOLS: [u8; 4] = [0, 6, 17, 99];

fn random_ip_range(r: &mut Rng) -> IpRange {
    let lo = r.below(u64::from(IPS)) as u32;
    let hi = r.range(u64::from(lo), u64::from(IPS) - 1) as u32;
    IpRange::new(Ipv4(lo), Ipv4(hi)).expect("lo <= hi")
}

fn random_port_range(r: &mut Rng) -> PortRange {
    let lo = r.below(u64::from(PORTS)) as u16;
    let hi = r.range(u64::from(lo), u64::from(PORTS) - 1) as u16;
    PortRange::new(lo, hi).expect("lo <= hi")
}

fn random_protocol(r: &mut Rng) -> Protocol {
    *r.pick(&[Protocol::Any, Protocol::Tcp, Protocol::Udp, Protocol::Number(99)])
}

fn random_space(r: &mut Rng) -> HeaderSpace {
    HeaderSpace {
        src: random_ip_range(r),
        src_ports: random_port_range(r),
        dst: random_ip_range(r),
        dst_ports: random_port_range(r),
        protocol: random_protocol(r),
    }
}

fn random_rule(r: &mut Rng, i: usize) -> Rule {
    Rule {
        name: format!("r{i}"),
        priority: r.below(16) as u32,
        filter: random_space(r),
        action: if r.chance(1, 2) {
            Action::Permit
        } else {
            Action::Deny
        },
    }
}

fn random_rules(r: &mut Rng) -> Vec<Rule> {
    (0..r.range(0, 8)).map(|i| random_rule(r, i as usize)).collect()
}

/// B starts as a copy of A and takes one small mutation — the shape of
/// real NSG churn (§3.4's incremental updates).
fn mutate_rules(r: &mut Rng, rules: &[Rule]) -> Vec<Rule> {
    let mut out = rules.to_vec();
    match r.below(5) {
        0 if !out.is_empty() => {
            let i = r.below(out.len() as u64) as usize;
            out.remove(i);
        }
        1 => out.push(random_rule(r, 100)),
        2 if !out.is_empty() => {
            let i = r.below(out.len() as u64) as usize;
            out[i].action = match out[i].action {
                Action::Permit => Action::Deny,
                Action::Deny => Action::Permit,
            };
        }
        3 if !out.is_empty() => {
            let i = r.below(out.len() as u64) as usize;
            out[i].priority = r.below(16) as u32;
        }
        _ => {}
    }
    out
}

fn random_contracts(r: &mut Rng) -> Vec<Contract> {
    (0..r.range(1, 3))
        .map(|i| {
            Contract::new(
                format!("c{i}"),
                random_space(r),
                if r.chance(1, 2) {
                    Action::Permit
                } else {
                    Action::Deny
                },
            )
        })
        .collect()
}

/// Every header-behavior class in the closed universe.
fn universe() -> impl Iterator<Item = HeaderTuple> {
    (0..IPS).flat_map(|si| {
        (0..PORTS).flat_map(move |sp| {
            (0..IPS).flat_map(move |di| {
                (0..PORTS).flat_map(move |dp| {
                    PROTOCOLS.into_iter().map(move |pr| HeaderTuple {
                        src_ip: Ipv4(si),
                        src_port: sp,
                        dst_ip: Ipv4(di),
                        dst_port: dp,
                        protocol: pr,
                    })
                })
            })
        })
    })
}

/// Ground-truth contract verdict by exhaustive evaluation.
fn reference_holds(p: &Policy, c: &Contract) -> bool {
    !universe().any(|h| {
        c.filter.contains(&h)
            && match c.expect {
                Action::Permit => !p.allows(&h),
                Action::Deny => p.allows(&h),
            }
    })
}

/// A reported witness must be a genuine counterexample.
fn witness_error(p: &Policy, c: &Contract, out: &secguru::CheckOutcome, who: &str) -> Option<String> {
    if out.holds {
        return None;
    }
    let Some(w) = &out.witness else {
        return Some(format!("{who}: violated contract {} has no witness", c.name));
    };
    if !c.filter.contains(w) {
        return Some(format!("{who}: witness for {} is outside the contract filter", c.name));
    }
    let wrong = match c.expect {
        Action::Permit => !p.allows(w),
        Action::Deny => p.allows(w),
    };
    if !wrong {
        return Some(format!(
            "{who}: witness for {} does not actually violate the contract",
            c.name
        ));
    }
    None
}

fn check_pair(
    a_rules: &[Rule],
    b_rules: &[Rule],
    convention: Convention,
    contracts: &[Contract],
) -> Option<String> {
    let a = Policy::new("A", convention, a_rules.to_vec());
    let b = Policy::new("B", convention, b_rules.to_vec());

    // Per-contract: SMT vs intervals vs exhaustive evaluation, on both
    // policies.
    for (label, p) in [("A", &a), ("B", &b)] {
        let mut smt = SecGuru::new(p.clone());
        let intervals = IntervalEngine::new();
        for c in contracts {
            let want = reference_holds(p, c);
            let got_smt = smt.check(c);
            let got_iv = intervals.check(p, c);
            if got_smt.holds != want {
                return Some(format!(
                    "policy {label}, contract {}: smt says holds={}, exhaustive says {want}",
                    c.name, got_smt.holds
                ));
            }
            if got_iv.holds != want {
                return Some(format!(
                    "policy {label}, contract {}: intervals say holds={}, exhaustive says {want}",
                    c.name, got_iv.holds
                ));
            }
            for (who, out) in [("smt", &got_smt), ("intervals", &got_iv)] {
                if let Some(e) = witness_error(p, c, out, who) {
                    return Some(format!("policy {label}: {e}"));
                }
            }
        }
    }

    // Pair-level: semantic diff vs ground-truth equivalence.
    let equivalent = universe().all(|h| a.allows(&h) == b.allows(&h));
    let diff = semantic_diff(&a, &b);
    if diff.is_equivalent() != equivalent {
        return Some(format!(
            "semantic_diff says equivalent={}, exhaustive says {equivalent}",
            diff.is_equivalent()
        ));
    }
    if let Some(w) = &diff.newly_denied {
        if !a.allows(w) || b.allows(w) {
            return Some("newly_denied witness is not (permitted before ∧ denied now)".into());
        }
    }
    if let Some(w) = &diff.newly_permitted {
        if a.allows(w) || !b.allows(w) {
            return Some("newly_permitted witness is not (denied before ∧ permitted now)".into());
        }
    }
    if smt_confirms_equivalence(&a, &b) != equivalent {
        return Some(format!(
            "smt_confirms_equivalence disagrees with exhaustive equivalence ({equivalent})"
        ));
    }
    None
}

fn render(a: &[Rule], b: &[Rule], convention: Convention, contracts: &[Contract]) -> String {
    let fmt_rules = |rules: &[Rule]| {
        rules
            .iter()
            .map(|r| {
                format!(
                    "  {} prio={} {:?} src {:?} ports {:?} dst {:?} ports {:?} proto {:?}\n",
                    r.name,
                    r.priority,
                    r.action,
                    r.filter.src,
                    r.filter.src_ports,
                    r.filter.dst,
                    r.filter.dst_ports,
                    r.filter.protocol
                )
            })
            .collect::<String>()
    };
    let mut s = format!("convention: {convention:?}\npolicy A:\n");
    s.push_str(&fmt_rules(a));
    s.push_str("policy B:\n");
    s.push_str(&fmt_rules(b));
    s.push_str("contracts:\n");
    for c in contracts {
        s.push_str(&format!("  {} expect {:?} on {:?}\n", c.name, c.expect, c.filter));
    }
    s
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let convention = if r.chance(1, 2) {
        Convention::FirstApplicable
    } else {
        Convention::DenyOverrides
    };
    let a = random_rules(&mut r);
    let b = mutate_rules(&mut r, &a);
    let contracts = random_contracts(&mut r);

    if let Some(summary) = check_pair(&a, &b, convention, &contracts) {
        let contracts_min =
            shrink_list(&contracts, |cs| check_pair(&a, &b, convention, cs).is_some());
        let a_min = shrink_list(&a, |ar| check_pair(ar, &b, convention, &contracts_min).is_some());
        let b_min =
            shrink_list(&b, |br| check_pair(&a_min, br, convention, &contracts_min).is_some());
        return Err(Failure {
            summary,
            minimized: render(&a_min, &b_min, convention, &contracts_min),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_policies_are_equivalent_and_deny() {
        let c = vec![Contract::new("deny-all", HeaderSpace::ALL, Action::Deny)];
        assert_eq!(check_pair(&[], &[], Convention::FirstApplicable, &c), None);
    }

    #[test]
    fn flipped_action_is_caught_by_all_three() {
        let mut r = Rng::new(99);
        let rule = random_rule(&mut r, 0);
        let mut flipped = rule.clone();
        flipped.action = match rule.action {
            Action::Permit => Action::Deny,
            Action::Deny => Action::Permit,
        };
        // The pair-level equivalence machinery must agree with ground
        // truth whichever way the verdict goes.
        assert_eq!(
            check_pair(
                &[rule],
                &[flipped],
                Convention::FirstApplicable,
                &[Contract::new("probe", HeaderSpace::ALL, Action::Deny)]
            ),
            None
        );
    }
}
