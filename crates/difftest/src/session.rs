//! Oracle: incremental solver sessions vs fresh solvers vs brute force.
//!
//! Random scripts of `assert` / `push` / `pop` / `check_assuming`
//! steps run against one long-lived [`Session`] — the usage pattern
//! the RCDC SMT engine and SecGuru rely on, where learned clauses and
//! the bit-blast cache survive across queries. Every query's verdict is
//! cross-checked two ways:
//!
//! * a **fresh session** built from scratch with exactly the
//!   assertions active at that point (what a stateless solver binding
//!   would do) must agree — this is what makes the E13 session-reuse
//!   speedup trustworthy;
//! * **brute force** over the tiny universe (two 4-bit bit-vectors and
//!   two Booleans, 1024 assignments) must agree with both.
//!
//! Satisfiable verdicts additionally have their model re-evaluated
//! against every active assertion and assumption. Scripts shrink with
//! the standard ddmin loop; a `pop` at scope depth zero is skipped
//! during replay so every step subset remains a valid script.

use crate::rng::Rng;
use crate::shrink::shrink_list;
use crate::Failure;
use smtkit::arena::{BoolId, TermArena, TermId};
use smtkit::{Session, SmtResult};

const W: u32 = 4;
const MASK: u64 = 0xf;

/// One atomic condition over the universe `x, y : bv4; p, q : bool`.
#[derive(Debug, Clone, Copy)]
enum Atom {
    /// `v ∈ [lo, hi]` for one of the bit-vector variables.
    InRange { var: u8, lo: u8, hi: u8 },
    /// `x = y`.
    VarsEqual,
    /// `x + y = k` (wrapping, 4-bit).
    SumEquals { k: u8 },
    /// `v ≤ k` for one of the bit-vector variables.
    UleConst { var: u8, k: u8 },
    /// One of the Boolean variables.
    BoolVar { var: u8 },
}

/// An atom with optional negation.
#[derive(Debug, Clone, Copy)]
struct Cond {
    atom: Atom,
    negate: bool,
}

/// One step of a session script.
#[derive(Debug, Clone)]
enum Step {
    /// Assert into the current scope.
    Assert(Cond),
    /// Open a scope.
    Push,
    /// Retract the innermost scope (skipped at depth 0 during replay,
    /// so any shrunken subsequence of a script is still a valid script).
    Pop,
    /// An assumption-based query.
    Check(Vec<Cond>),
}

/// A concrete assignment of the universe.
#[derive(Debug, Clone, Copy)]
struct Env {
    x: u64,
    y: u64,
    p: bool,
    q: bool,
}

fn eval(c: &Cond, e: Env) -> bool {
    let bv = |var: u8| if var == 0 { e.x } else { e.y };
    let v = match c.atom {
        Atom::InRange { var, lo, hi } => (lo as u64..=hi as u64).contains(&bv(var)),
        Atom::VarsEqual => e.x == e.y,
        Atom::SumEquals { k } => (e.x + e.y) & MASK == k as u64,
        Atom::UleConst { var, k } => bv(var) <= k as u64,
        Atom::BoolVar { var } => {
            if var == 0 {
                e.p
            } else {
                e.q
            }
        }
    };
    v != c.negate
}

fn intern(c: &Cond, a: &mut TermArena, x: TermId, y: TermId) -> BoolId {
    let bv = |var: u8| if var == 0 { x } else { y };
    let b = match c.atom {
        Atom::InRange { var, lo, hi } => a.in_range(bv(var), lo as u64, hi as u64),
        Atom::VarsEqual => a.eq(x, y),
        Atom::SumEquals { k } => {
            let s = a.add(x, y);
            let kc = a.constant(W, k as u64);
            a.eq(s, kc)
        }
        Atom::UleConst { var, k } => {
            let kc = a.constant(W, k as u64);
            a.ule(bv(var), kc)
        }
        Atom::BoolVar { var } => a.bool_var(if var == 0 { "p" } else { "q" }),
    };
    if c.negate {
        a.not(b)
    } else {
        b
    }
}

/// Brute-force verdict: do the active assertions plus assumptions have
/// a satisfying assignment?
fn brute(scopes: &[Vec<Cond>], assumptions: &[Cond]) -> SmtResult {
    for bits in 0u64..(1 << (2 * W + 2)) {
        let e = Env {
            x: bits & MASK,
            y: (bits >> W) & MASK,
            p: (bits >> (2 * W)) & 1 == 1,
            q: (bits >> (2 * W + 1)) & 1 == 1,
        };
        if scopes.iter().flatten().all(|c| eval(c, e)) && assumptions.iter().all(|c| eval(c, e)) {
            return SmtResult::Sat;
        }
    }
    SmtResult::Unsat
}

/// The stateless-rebuild reference: a brand-new session asserting
/// exactly what is active, queried once.
fn fresh_verdict(scopes: &[Vec<Cond>], assumptions: &[Cond]) -> SmtResult {
    let mut s = Session::new();
    let (x, y) = {
        let a = s.arena_mut();
        (a.var("x", W), a.var("y", W))
    };
    for c in scopes.iter().flatten() {
        let b = intern(c, s.arena_mut(), x, y);
        s.assert(b);
    }
    let ids: Vec<BoolId> = assumptions
        .iter()
        .map(|c| intern(c, s.arena_mut(), x, y))
        .collect();
    s.check_assuming(&ids)
}

/// Replay a script against one long-lived session, cross-checking every
/// query three ways. Returns the first disagreement.
fn check_script(steps: &[Step]) -> Option<String> {
    let mut s = Session::new();
    let (x, y) = {
        let a = s.arena_mut();
        (a.var("x", W), a.var("y", W))
    };
    // Mirror of the session's scope stack, as plain conditions.
    let mut scopes: Vec<Vec<Cond>> = vec![Vec::new()];
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Push => {
                s.push();
                scopes.push(Vec::new());
            }
            Step::Pop => {
                if scopes.len() > 1 {
                    s.pop();
                    scopes.pop();
                }
            }
            Step::Assert(c) => {
                let b = intern(c, s.arena_mut(), x, y);
                s.assert(b);
                scopes.last_mut().expect("scope 0 always open").push(*c);
            }
            Step::Check(assumptions) => {
                let ids: Vec<BoolId> = assumptions
                    .iter()
                    .map(|c| intern(c, s.arena_mut(), x, y))
                    .collect();
                let got = s.check_assuming(&ids);
                let want = brute(&scopes, assumptions);
                if got != want {
                    return Some(format!(
                        "step {i}: session says {got:?}, brute force says {want:?} \
                         (depth {})",
                        scopes.len() - 1
                    ));
                }
                let fresh = fresh_verdict(&scopes, assumptions);
                if fresh != got {
                    return Some(format!(
                        "step {i}: session says {got:?}, fresh solver says {fresh:?}"
                    ));
                }
                if got == SmtResult::Sat {
                    let m = s.model();
                    let e = Env {
                        x: m.value("x").unwrap_or(0),
                        y: m.value("y").unwrap_or(0),
                        p: m.bool_value("p").unwrap_or(false),
                        q: m.bool_value("q").unwrap_or(false),
                    };
                    if let Some(c) = scopes
                        .iter()
                        .flatten()
                        .chain(assumptions)
                        .find(|c| !eval(c, e))
                    {
                        return Some(format!(
                            "step {i}: model {e:?} violates active condition {c:?}"
                        ));
                    }
                }
            }
        }
    }
    None
}

fn random_cond(r: &mut Rng) -> Cond {
    let atom = match r.below(5) {
        0 => {
            let lo = r.below(16) as u8;
            let hi = r.range(lo as u64, 15) as u8;
            Atom::InRange {
                var: r.below(2) as u8,
                lo,
                hi,
            }
        }
        1 => Atom::VarsEqual,
        2 => Atom::SumEquals {
            k: r.below(16) as u8,
        },
        3 => Atom::UleConst {
            var: r.below(2) as u8,
            k: r.below(16) as u8,
        },
        _ => Atom::BoolVar {
            var: r.below(2) as u8,
        },
    };
    Cond {
        atom,
        negate: r.chance(1, 2),
    }
}

fn random_script(r: &mut Rng) -> Vec<Step> {
    let n = r.range(4, 32);
    (0..n)
        .map(|_| match r.below(100) {
            0..=39 => Step::Assert(random_cond(r)),
            40..=54 => Step::Push,
            55..=69 => Step::Pop,
            _ => {
                let k = r.below(3);
                Step::Check((0..k).map(|_| random_cond(r)).collect())
            }
        })
        .collect()
}

fn render(steps: &[Step]) -> String {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{i}: {s:?}"))
        .collect::<Vec<_>>()
        .join("\n")
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    let mut r = Rng::new(seed);
    let steps = random_script(&mut r);
    if let Some(summary) = check_script(&steps) {
        let min = shrink_list(&steps, |sub| check_script(sub).is_some());
        return Err(Failure {
            summary,
            minimized: render(&min),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_seeds_are_green() {
        for seed in 0..50 {
            assert!(run(seed).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn hand_written_scoped_script_passes() {
        let in_lo = |lo: u8, hi: u8| Cond {
            atom: Atom::InRange { var: 0, lo, hi },
            negate: false,
        };
        let steps = vec![
            Step::Assert(in_lo(2, 9)),
            Step::Check(vec![]),
            Step::Push,
            Step::Assert(in_lo(10, 15)), // contradicts scope 0
            Step::Check(vec![]),
            Step::Pop,
            Step::Check(vec![]), // satisfiable again after retraction
            Step::Pop,           // depth 0: skipped, not an error
            Step::Check(vec![in_lo(0, 1)]), // unsat under assumption
        ];
        assert_eq!(check_script(&steps), None);
    }

    #[test]
    fn detects_a_wrong_verdict_shape() {
        // Sanity of the harness itself: a script whose brute-force
        // verdict is Unsat must also be Unsat through the session —
        // evaluate both directly rather than trusting check_script.
        let c = Cond {
            atom: Atom::VarsEqual,
            negate: false,
        };
        let n = Cond {
            atom: Atom::VarsEqual,
            negate: true,
        };
        assert_eq!(brute(&[vec![c, n]], &[]), SmtResult::Unsat);
        assert_eq!(fresh_verdict(&[vec![c, n]], &[]), SmtResult::Unsat);
        assert_eq!(brute(&[vec![c]], &[n]), SmtResult::Unsat);
        assert_eq!(brute(&[vec![c]], &[]), SmtResult::Sat);
    }
}
