//! Greedy delta-debugging-style list minimization.
//!
//! The implementation lives in [`simnet::shrink`] (the simulation
//! harness shrinks event scripts with the same ddmin loop the oracles
//! use for clauses, FIB entries, policy rules and churn steps); this
//! module re-exports it under the historical path.

pub(crate) use simnet::shrink::shrink_list;
