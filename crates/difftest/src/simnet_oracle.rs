//! Oracle 7: the deterministic pipeline simulation.
//!
//! Drives the real live-pipeline components (stores, verdict cache,
//! notification validator, analytics) through a seeded fault schedule
//! — drops, duplicates, reordering, stale snapshots, corrupted deltas,
//! device flaps, mid-sweep contract republishes — and checks the
//! convergence invariants afterwards (see [`simnet::sim`]). The
//! cross-check here is end-state equivalence: whatever the schedule
//! did, the pipeline's final verdicts must match a clean full sweep of
//! the final network state.

use crate::Failure;
use simnet::sim::{Flaws, SimEnv};
use std::sync::OnceLock;

/// Simulation seeds checked per oracle invocation.
const RUNS: u64 = 2;

fn env() -> &'static SimEnv {
    static ENV: OnceLock<SimEnv> = OnceLock::new();
    ENV.get_or_init(SimEnv::figure3)
}

pub(crate) fn run(seed: u64) -> Result<(), Failure> {
    for sim_seed in seed..seed + RUNS {
        if let Some(failure) = simnet::check_seed_with(env(), sim_seed, Flaws::default()) {
            return Err(Failure {
                summary: format!(
                    "pipeline simulation seed {} violated {}",
                    failure.seed, failure.violation.invariant
                ),
                minimized: failure.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_passes_on_early_seeds() {
        for seed in 0..8 {
            if let Err(f) = run(seed) {
                panic!("sim oracle failed: {}\n{}", f.summary, f.minimized);
            }
        }
    }

    #[test]
    fn oracle_has_teeth_against_an_emulated_staleness_bug() {
        // Meta-check mirroring the other oracles' self-tests: with an
        // emulated epoch-blind verdict cache, some early seed must
        // produce a failure whose report carries the replay seed.
        let flaws = Flaws {
            stale_epoch_cache: true,
        };
        let failure = (0..64)
            .find_map(|seed| simnet::check_seed_with(env(), seed, flaws))
            .expect("emulated bug must be caught");
        assert_eq!(failure.violation.invariant, "cache-freshness");
    }
}
