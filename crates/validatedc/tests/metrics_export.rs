//! End-to-end validation of the `--metrics` export: build the exact
//! snapshot the CLI writes (batch pass with engine instrumentation +
//! cold/warm live-pipeline sweep), render it as Prometheus text, and
//! hold it to the exposition format with obskit's strict parser.

use obskit::export::parse_prometheus;
use validatedc::prelude::*;

fn exported_prometheus() -> (String, usize) {
    let topology = build_clos(&ClosParams {
        clusters: 2,
        tors_per_cluster: 2,
        leaves_per_cluster: 2,
        spines: 2,
        regional_spines: 2,
        regional_groups: 1,
        prefixes_per_tor: 1,
    });
    let fibs = simulate(&topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&topology);
    let registry = Registry::new();
    let validator = Validator::new(&meta)
        .engine(EngineChoice::Smt)
        .metrics(&registry)
        .build();
    let report = validator.run(&fibs);
    let (cache, analytics) = validatedc::metrics::live_sweep(&meta, &fibs, &registry);
    let snapshot = registry.observe_and_snapshot(&[&cache, &analytics, &report]);
    (snapshot.to_prometheus(), fibs.len())
}

#[test]
fn metrics_export_is_valid_prometheus_with_all_families() {
    let (text, devices) = exported_prometheus();
    let samples = parse_prometheus(&text).expect("exported text must parse");
    let value = |name: &str, labels: &[(&str, &str)]| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels.iter().all(|(k, v)| {
                        s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                    })
            })
            .map(|s| s.value)
    };

    // Validate-latency histogram, per mode (acceptance check #2).
    let full_count = value("rcdc_validate_latency_ns_count", &[("mode", "full")])
        .expect("full-mode latency histogram");
    assert_eq!(full_count, devices as f64);
    assert!(
        value("rcdc_validate_latency_ns_bucket", &[("mode", "full"), ("le", "+Inf")]).is_some(),
        "histogram must expose cumulative buckets"
    );

    // Verdict-cache counters: cold sweep misses, warm sweep hits.
    assert_eq!(
        value("rcdc_verdict_cache_misses_total", &[]),
        Some(devices as f64)
    );
    assert_eq!(
        value("rcdc_verdict_cache_hits_total", &[]),
        Some(devices as f64)
    );
    assert_eq!(
        value("rcdc_verdict_cache_lookups_total", &[]),
        Some(2.0 * devices as f64)
    );

    // Per-engine check counters from the instrumented batch pass.
    assert_eq!(
        value("rcdc_engine_checks_total", &[("engine", "smt"), ("op", "full")]),
        Some(devices as f64)
    );

    // Solver session gauges (SMT pass: non-zero query count).
    let queries = value("rcdc_solver_queries", &[]).expect("solver gauge family");
    assert!(queries > 0.0, "SMT pass must issue solver queries");

    // Mode counters and pass families ride along.
    assert_eq!(
        value("rcdc_validate_mode_total", &[("mode", "cache_hit")]),
        Some(devices as f64)
    );
    assert_eq!(
        value("rcdc_pass_devices_validated_total", &[]),
        Some(devices as f64)
    );
}

#[test]
fn json_export_round_trips_same_families() {
    let topology = build_clos(&ClosParams {
        clusters: 1,
        tors_per_cluster: 2,
        leaves_per_cluster: 2,
        spines: 2,
        regional_spines: 2,
        regional_groups: 1,
        prefixes_per_tor: 1,
    });
    let fibs = simulate(&topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&topology);
    let registry = Registry::new();
    let (cache, analytics) = validatedc::metrics::live_sweep(&meta, &fibs, &registry);
    let snapshot = registry.observe_and_snapshot(&[&cache, &analytics]);
    let json = snapshot.to_json();
    for family in [
        "rcdc_validate_latency_ns",
        "rcdc_validate_mode_total",
        "rcdc_verdict_cache_hits_total",
        "rcdc_analytics_ingested_total",
        "rcdc_queue_depth",
    ] {
        assert!(json.contains(family), "JSON export missing {family}");
    }
}
