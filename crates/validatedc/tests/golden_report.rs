//! Golden snapshot of the `validatedc validate` report text.
//!
//! The rendered report is the operator-facing contract of the CLI:
//! summary line, solver totals (`SessionStats`), and the triaged
//! dirty-device list. This test pins the exact bytes for a fixed
//! faulted datacenter on the SMT engine; any change to wording,
//! triage, risk ranking, or solver accounting shows up as a diff.
//!
//! To update after an intentional change, bless the snapshot:
//!
//! ```text
//! BLESS=1 cargo test -p validatedc --test golden_report
//! ```

use validatedc::prelude::*;
use validatedc::render::render_validate_report;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/validate_report.txt");

/// A small datacenter with two deterministically failed links — enough
/// to produce violations on several devices with mixed risk ranks.
fn rendered_report() -> String {
    let params = ClosParams {
        clusters: 2,
        tors_per_cluster: 4,
        leaves_per_cluster: 2,
        spines: 4,
        regional_spines: 2,
        regional_groups: 1,
        prefixes_per_tor: 1,
    };
    let mut topology = build_clos(&params);
    let links = topology.links().len() as u32;
    // Fixed link choices (not RNG-drawn) so the snapshot depends only
    // on the generator and the validator, not on any PRNG stream.
    for l in [3u32, links / 2, links - 5] {
        topology.set_link_state(dctopo::LinkId(l), LinkState::OperDown);
    }
    let fibs = simulate(&topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&topology);
    let validator = Validator::new(&meta)
        .engine(EngineChoice::Smt)
        .threads(1)
        .build();
    let report = validator.run(&fibs);
    assert!(
        !report.is_clean(),
        "scenario must produce violations or the snapshot tests nothing"
    );
    let solver = report.solver_totals();
    assert!(
        solver.queries > 0,
        "SMT engine must contribute SessionStats totals to the report"
    );
    render_validate_report(&report, &topology, &meta, None)
}

#[test]
fn validate_report_matches_golden_snapshot() {
    let got = rendered_report();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN} ({e}); run with BLESS=1 to create it")
    });
    assert!(
        got == want,
        "report drifted from golden snapshot.\n--- golden\n{want}\n--- got\n{got}\n\
         If the change is intentional, re-bless with:\n  \
         BLESS=1 cargo test -p validatedc --test golden_report"
    );
}

#[test]
fn rendering_is_deterministic() {
    assert_eq!(rendered_report(), rendered_report());
}

#[test]
fn elapsed_suffix_is_the_only_nondeterministic_part() {
    // The CLI passes `Some(elapsed)`; everything after the summary
    // line must be identical with and without it.
    let without = rendered_report();
    let tail = without.split_once('\n').unwrap().1;
    assert!(!tail.is_empty());
    assert!(without.starts_with("checked "));
}
