//! Shared command-line argument layer for the `validatedc` binary.
//!
//! Every fabric-driving subcommand (`validate`, `whatif`, `serve`,
//! `plan`) accepts the same vocabulary — Clos shape flags, `--seed`,
//! `--threads`, `--engine`, `--metrics` — and follows the same exit
//! convention (0 = clean/safe, 2 = violations/counterexample/unsafe,
//! 1 = error). This module is that vocabulary, parsed once instead of
//! copied per subcommand.

use dctopo::ClosParams;
use rcdc::runner::EngineChoice;

/// Pull `--key value` options out of an argument list.
pub struct Opts<'a> {
    args: &'a [String],
}

impl<'a> Opts<'a> {
    /// Wrap a subcommand's argument slice.
    pub fn new(args: &'a [String]) -> Self {
        Opts { args }
    }

    /// The value following the last-irrelevant first occurrence of
    /// `--key`, if any.
    pub fn value(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Every value following an occurrence of `--key` (repeatable
    /// options like `--contract`).
    pub fn values(&self, key: &str) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i] == key {
                if let Some(v) = self.args.get(i + 1) {
                    out.push(v.as_str());
                }
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Parse `--key value` into `T`, or return `default` when absent.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {key}: {v:?}")),
        }
    }

    /// Is the bare flag `--name` present?
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// Arguments that are not `--key value` pairs (input files).
    pub fn positional(&self) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i].starts_with("--") {
                i += 2;
            } else {
                out.push(self.args[i].as_str());
                i += 1;
            }
        }
        out
    }
}

/// The flags shared by every fabric-driving subcommand.
pub struct FabricArgs<'a> {
    /// Generated Clos shape (`--clusters/--tors/--leaves/--spines`).
    pub params: ClosParams,
    /// Deterministic seed for fault injection / scenario choice.
    pub seed: u64,
    /// Worker threads (0 = the component's own default).
    pub threads: usize,
    /// Verification engine.
    pub engine: EngineChoice,
    /// Metric-export destination (`-` = Prometheus text on stdout).
    pub metrics: Option<&'a str>,
}

impl<'a> FabricArgs<'a> {
    /// Parse the shared flags out of a subcommand's options.
    pub fn parse(opts: &Opts<'a>) -> Result<FabricArgs<'a>, String> {
        Ok(FabricArgs {
            params: ClosParams {
                clusters: opts.parsed("--clusters", 4u32)?,
                tors_per_cluster: opts.parsed("--tors", 8u32)?,
                leaves_per_cluster: opts.parsed("--leaves", 4u32)?,
                spines: opts.parsed("--spines", 8u32)?,
                regional_spines: 4,
                regional_groups: 2,
                prefixes_per_tor: 1,
            },
            seed: opts.parsed("--seed", 7u64)?,
            threads: opts.parsed("--threads", 0usize)?,
            engine: opts.value("--engine").unwrap_or("trie").parse()?,
            metrics: opts.value("--metrics"),
        })
    }

    /// Human-report sink honoring the `--metrics -` convention: with
    /// Prometheus text on stdout, the report moves to stderr so the
    /// exposition stays machine-parseable.
    pub fn console(&self) -> Console {
        Console {
            to_stderr: self.metrics == Some("-"),
        }
    }
}

/// Where the human-readable report lines go (see
/// [`FabricArgs::console`]).
pub struct Console {
    to_stderr: bool,
}

impl Console {
    /// Console for a subcommand that takes `--metrics` without the
    /// full fabric vocabulary (the ACL/NSG file checkers).
    pub fn for_dest(metrics: Option<&str>) -> Console {
        Console {
            to_stderr: metrics == Some("-"),
        }
    }

    /// Print one report line.
    pub fn say(&self, line: impl AsRef<str>) {
        if self.to_stderr {
            eprintln!("{}", line.as_ref());
        } else {
            println!("{}", line.as_ref());
        }
    }
}
