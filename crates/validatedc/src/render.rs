//! Deterministic rendering of the `validatedc validate` report.
//!
//! Factored out of the CLI so the exact operator-facing text is
//! golden-snapshot-tested: everything here is a pure function of the
//! validation result (wall-clock time is the caller's optional
//! suffix), so the same datacenter must render byte-identically
//! forever — or the golden file must be re-blessed consciously.

use dctopo::{DeviceId, MetadataService, Topology};
use rcdc::classify::classify_device;
use rcdc::report::risk_of;
use rcdc::runner::DatacenterReport;
use std::fmt::Write;
use std::time::Duration;

/// Dirty devices listed before the report truncates.
const MAX_DEVICES_SHOWN: usize = 20;

/// Render the validation summary, solver totals and triaged dirty-device
/// list exactly as the CLI prints them. `elapsed` appends wall-clock
/// time to the summary line when given (the CLI passes it; golden tests
/// do not, keeping the output deterministic).
pub fn render_validate_report(
    report: &DatacenterReport,
    topology: &Topology,
    meta: &MetadataService,
    elapsed: Option<Duration>,
) -> String {
    let mut out = String::new();
    write!(
        out,
        "checked {} contracts on {} devices",
        report.contracts_checked(),
        topology.devices().len()
    )
    .unwrap();
    if let Some(elapsed) = elapsed {
        write!(out, " in {elapsed:?}").unwrap();
    }
    writeln!(
        out,
        ": {} violations on {} devices",
        report.total_violations(),
        report.dirty_devices()
    )
    .unwrap();
    let solver = report.solver_totals();
    if solver.queries > 0 {
        writeln!(
            out,
            "solver: {} queries, {} conflicts, {} propagations, {} learned clauses, \
             {} blast-cache hits / {} misses",
            solver.queries,
            solver.conflicts,
            solver.propagations,
            solver.learned,
            solver.blast_cache_hits,
            solver.blast_cache_misses
        )
        .unwrap();
    }
    let mut shown = 0;
    for (i, r) in report.reports.iter().enumerate() {
        if r.is_clean() {
            continue;
        }
        let device = DeviceId(i as u32);
        let risk = r
            .violations
            .iter()
            .map(|v| risk_of(v, meta))
            .max()
            .unwrap();
        let cause = classify_device(device, r, topology, meta)
            .map(|c| format!("{:?}", c.cause))
            .unwrap_or_default();
        writeln!(
            out,
            "  [{risk:?}] {} — {} violations — {}",
            meta.device(device).name,
            r.violations.len(),
            cause
        )
        .unwrap();
        shown += 1;
        if shown >= MAX_DEVICES_SHOWN {
            writeln!(out, "  … ({} more dirty devices)", report.dirty_devices() - shown).unwrap();
            break;
        }
    }
    out
}
