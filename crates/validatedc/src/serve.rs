//! Support for the CLI `serve` subcommand: a mutable snapshot source
//! the churn driver rewrites while the sharded validation service
//! keeps pulling from it.
//!
//! Shared between the `validatedc` binary and the integration tests so
//! the exact churn mechanics the CLI exercises are what the tests
//! validate.

use bgpsim::{Fib, FibBuilder};
use dctopo::DeviceId;
use netprim::wire::WireSnapshot;
use rcdc::pipeline::SnapshotSource;
use std::sync::RwLock;

/// A [`SnapshotSource`] over tables the driver mutates between pulls —
/// the live network under route churn, as seen by the service's shard
/// workers.
pub struct ChurningSource {
    fibs: RwLock<Vec<Fib>>,
}

impl ChurningSource {
    /// Wrap the fleet's initial converged tables.
    pub fn new(fibs: Vec<Fib>) -> Self {
        ChurningSource {
            fibs: RwLock::new(fibs),
        }
    }

    /// Replace one device's table (the next pull observes it).
    pub fn set(&self, fib: Fib) {
        let device = fib.device().0 as usize;
        self.fibs.write().unwrap()[device] = fib;
    }

    /// The device's current table.
    pub fn get(&self, device: DeviceId) -> Fib {
        self.fibs.read().unwrap()[device.0 as usize].clone()
    }
}

impl SnapshotSource for ChurningSource {
    fn pull(&self, device: DeviceId) -> WireSnapshot {
        self.fibs.read().unwrap()[device.0 as usize].to_wire()
    }
}

/// Drop the `index`-th (mod eligible) non-local route from a table —
/// the route-withdrawal churn `serve` injects. A table with no
/// droppable routes is returned unchanged.
pub fn drop_route(fib: &Fib, index: usize) -> Fib {
    let eligible: Vec<_> = fib
        .entries()
        .iter()
        .filter(|e| !e.local)
        .map(|e| e.prefix)
        .collect();
    if eligible.is_empty() {
        return fib.clone();
    }
    let target = eligible[index % eligible.len()];
    let mut b = FibBuilder::new(fib.device());
    for e in fib.entries() {
        if e.prefix == target {
            continue;
        }
        b.push(e.prefix, fib.next_hops(e).to_vec(), e.local);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::{simulate, SimConfig};

    #[test]
    fn churned_source_serves_latest_table() {
        let f = dctopo::generator::figure3();
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        let source = ChurningSource::new(fibs.clone());
        let d = f.tors[0];
        let before = Fib::from_wire(&source.pull(d)).unwrap();
        assert_eq!(before.content_hash(), fibs[d.0 as usize].content_hash());

        let dropped = drop_route(&before, 0);
        assert!(dropped.entries().len() < before.entries().len());
        source.set(dropped.clone());
        let after = Fib::from_wire(&source.pull(d)).unwrap();
        assert_eq!(after.content_hash(), dropped.content_hash());
        // Other devices are untouched.
        let other = f.tors[1];
        assert_eq!(
            Fib::from_wire(&source.pull(other)).unwrap().content_hash(),
            fibs[other.0 as usize].content_hash()
        );
    }
}
