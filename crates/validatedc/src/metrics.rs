//! Support for the CLI `--metrics` export: drive the live monitoring
//! pipeline over a set of FIBs so the exported registry carries the
//! pipeline's metric families, not just the batch pass's.
//!
//! Shared between the `validatedc` binary and the integration tests so
//! the exact bytes the CLI emits are what the tests validate.

use dctopo::{DeviceId, MetadataService};
use obskit::Registry;
use rcdc::contracts::generate_contracts;
use rcdc::pipeline::{
    run_sweep, ContractStore, FibStore, PipelineMetrics, SimulatedSource, StreamAnalytics,
    VerdictCache,
};

/// Run a cold + warm monitoring sweep over `fibs` with the pipeline's
/// hot-path handles attached to `registry`: the cold sweep fills the
/// verdict cache (all misses, all full validations) and the warm sweep
/// is served from it (all hits), populating
/// `rcdc_validate_latency_ns{mode}`, `rcdc_validate_mode_total{mode}`,
/// and `rcdc_queue_depth`.
///
/// Returns the sweep's [`VerdictCache`] and [`StreamAnalytics`] so the
/// caller can include them as observers in the final snapshot (the
/// `rcdc_verdict_cache_*` counters and `rcdc_analytics_*` families).
pub fn live_sweep(
    meta: &MetadataService,
    fibs: &[bgpsim::Fib],
    registry: &Registry,
) -> (VerdictCache, StreamAnalytics) {
    let contract_store = ContractStore::default();
    for (i, dc) in generate_contracts(meta).into_iter().enumerate() {
        contract_store.put(DeviceId(i as u32), dc);
    }
    let devices: Vec<DeviceId> = (0..fibs.len() as u32).map(DeviceId).collect();
    let source = SimulatedSource::new(fibs.to_vec());
    let fib_store = FibStore::default();
    let cache = VerdictCache::default();
    let analytics = StreamAnalytics::default();
    let pipeline_metrics = PipelineMetrics::new(registry);
    for _sweep in 0..2 {
        run_sweep(
            &devices,
            &source,
            &contract_store,
            &fib_store,
            &cache,
            &analytics,
            4,
            2,
            Some(&pipeline_metrics),
        );
    }
    (cache, analytics)
}
