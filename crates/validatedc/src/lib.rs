//! # validatedc — validating datacenters at scale, in Rust
//!
//! Umbrella crate re-exporting the full reproduction of *Validating
//! Datacenters At Scale* (SIGCOMM 2019): the RCDC forwarding-state
//! checker, the SecGuru connectivity-policy checker, and every
//! substrate they run on.
//!
//! | crate | role |
//! |---|---|
//! | [`netprim`] | addresses, prefixes, header spaces, FIB wire codec |
//! | [`smtkit`] | from-scratch QF_BV SMT solver (CDCL + bit-blasting) |
//! | [`dctopo`] | Clos topology model, metadata service, generator, faults |
//! | [`bgpsim`] | EBGP convergence producing per-device FIBs |
//! | [`rcdc`] | local contracts, verification engines, monitoring pipeline |
//! | [`secguru`] | ACL/NSG/firewall verification and change gating |
//! | [`dcemu`] | emulated-network pre-checks for configuration changes |
//! | [`obskit`] | dependency-free metrics: counters, gauges, histograms, exporters |
//!
//! ## Quickstart
//!
//! ```
//! use validatedc::prelude::*;
//!
//! // A small Clos datacenter with healthy state.
//! let topology = build_clos(&ClosParams::default());
//! let fibs = simulate(&topology, &SimConfig::healthy());
//!
//! // Intent is derived from architecture, not from network state.
//! let meta = MetadataService::from_topology(&topology);
//!
//! // Local validation: every device independently.
//! let validator = Validator::new(&meta).engine(EngineChoice::Trie).build();
//! let report = validator.run(&fibs);
//! assert!(report.is_clean());
//!
//! // Steady state: warm passes reuse verdicts for unchanged devices.
//! let warm = validator.run_incremental(&fibs, &report);
//! assert_eq!(warm.reused, fibs.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod metrics;
pub mod render;
pub mod serve;

pub use bgpsim;
pub use dcemu;
pub use dctopo;
pub use netprim;
pub use obskit;
pub use rcdc;
pub use secguru;
pub use smtkit;

/// Commonly used items, for `use validatedc::prelude::*`.
pub mod prelude {
    pub use bgpsim::{simulate, simulate_with, DeviceOverride, Fib, FibBuilder, SimConfig, SimOptions};
    pub use dctopo::generator::figure3;
    pub use dctopo::{build_clos, ClosParams, DeviceId, LinkState, MetadataService, Role, Topology};
    pub use netprim::{HeaderSpace, HeaderTuple, IpRange, Ipv4, PortRange, Prefix, Protocol};
    pub use obskit::{MetricsSnapshot, Observer, Registry};
    pub use rcdc::classify::{classify_device, Classification, RootCause};
    pub use rcdc::contracts::generate_contracts;
    pub use rcdc::engine::{smt::SmtEngine, trie::TrieEngine, Engine};
    pub use rcdc::report::{risk_of, Risk, ValidationReport, Violation};
    pub use rcdc::rollout::{
        seeded_scenario, ConfigChange, ManagedNetwork, OrderCheck, PlanOptions, PlanReport,
        PlanStep, PlanVerdict, Prechecker, PrecheckReport, RolloutPlanner, RolloutScenario,
        UnsafePrefix, WorkflowOutcome,
    };
    pub use rcdc::runner::{DatacenterReport, EngineChoice};
    pub use rcdc::service::{IngestEvent, ServiceHandle, ValidationService};
    pub use rcdc::shard::ShardRouter;
    pub use rcdc::validator::{Validator, ValidatorBuilder};
    pub use rcdc::whatif::{
        FailCondition, FailureElement, RobustnessVerdict, SweepOptions, SweepReport, WhatIfSweeper,
    };
    pub use secguru::engine::{IntervalEngine, SecGuru};
    pub use secguru::model::{Action, Contract, Convention, Policy, Rule};
    pub use secguru::parser::{parse_acl, parse_nsg};
}
