//! `validatedc` — command-line front end for the datacenter validation
//! toolkit.
//!
//! ```text
//! validatedc validate [--clusters N] [--tors N] [--leaves N] [--spines N]
//!                     [--fail-links N] [--seed S] [--engine trie|trie-semantic|smt|smt-semantic]
//!                     [--threads N] [--metrics <path|->]
//!     Generate a Clos datacenter, optionally inject random link
//!     faults, converge BGP, validate all local contracts, and print
//!     the triaged report.
//!
//! validatedc whatif   [--k N] [--condition any|low|medium|high|blackhole]
//!                     [--devices] [--symmetry] [--sample N] [--exhaustive]
//!                     [--clusters N] [--tors N] [--leaves N] [--spines N]
//!                     [--fail-links N] [--seed S] [--engine ...] [--threads N]
//!                     [--metrics <path|->]
//!     K-failure robustness sweep: enumerate failure scenarios up to
//!     size k, re-converge each incrementally from the healthy fixed
//!     point, revalidate only the changed devices, and print either a
//!     Robust(k) certificate or a minimal counterexample scenario.
//!
//! validatedc plan     [--scenario migrate|decommission] [--racks N]
//!                     [--condition any|low|medium|high|blackhole]
//!                     [--no-accept-final] [--max-backtracks N]
//!                     [--clusters N] [--tors N] [--leaves N] [--spines N]
//!                     [--seed S] [--engine ...] [--threads N] [--metrics <path|->]
//!     Safe change-rollout planning: build a seeded maintenance
//!     scenario over the generated fabric, show where the naive
//!     submit order first violates the contracts, and search for an
//!     ordering whose every intermediate state is safe. Exit 0 = safe
//!     plan found, 2 = minimal unsafe change set reported.
//!
//! validatedc check-acl <FILE> [--contract "<filter>;<permit|deny>"]...
//!                     [--metrics <path|->]
//!     Parse a Cisco-IOS-style ACL and check contracts against it.
//!     With no contracts given, runs the built-in edge-ACL regression
//!     suite.
//!
//! validatedc check-nsg <FILE> --db-subnet <PFX> --infra <PFX> --port <N>
//!     Validate an NSG policy file against the auto-generated
//!     database-backup reachability contracts (§3.4).
//!
//! validatedc diff-acl <OLD> <NEW> [--metrics <path|->]
//!     Semantic diff of two ACL files: witnesses for newly-denied and
//!     newly-permitted traffic, or a proof of equivalence.
//! ```
//!
//! `--metrics` exports the run's metric registry after the command
//! finishes: `-` writes Prometheus text to stdout (the human report
//! moves to stderr so the exposition stays parseable), a `.json` path
//! writes the JSON form, any other path Prometheus text. On
//! `validate` the export covers the batch pass (`rcdc_pass_*`,
//! `rcdc_engine_*`, `rcdc_solver_*`) plus a cold+warm live-pipeline
//! sweep over the same FIBs (`rcdc_validate_latency_ns`,
//! `rcdc_validate_mode_total`, `rcdc_verdict_cache_*`,
//! `rcdc_analytics_*`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secguru::diff::{semantic_diff, SmtDiff};
use secguru::nsg_gate::{NsgApi, UpdateResult, VnetMetadata};
use std::process::ExitCode;
use std::sync::Arc;
use validatedc::cli::{Console, FabricArgs, Opts};
use validatedc::obskit;
use validatedc::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "validate" => cmd_validate(rest),
        "whatif" => cmd_whatif(rest),
        "serve" => cmd_serve(rest),
        "plan" => cmd_plan(rest),
        "check-acl" => cmd_check_acl(rest),
        "check-nsg" => cmd_check_nsg(rest),
        "diff-acl" => cmd_diff_acl(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2), // checks ran; violations found
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  validatedc validate [--clusters N] [--tors N] [--leaves N] [--spines N]
                      [--fail-links N] [--seed S] [--engine trie|trie-semantic|smt|smt-semantic] [--threads N]
                      [--metrics <path|->]
  validatedc whatif   [--k N] [--condition any|low|medium|high|blackhole] [--devices]
                      [--symmetry] [--sample N] [--exhaustive]
                      [--clusters N] [--tors N] [--leaves N] [--spines N]
                      [--fail-links N] [--seed S] [--engine trie|trie-semantic|smt|smt-semantic]
                      [--threads N] [--metrics <path|->]
      Sweep failure scenarios up to k simultaneous link (--devices:
      also device) failures, re-converging each incrementally and
      revalidating only the changed devices. Prints Robust(k) or a
      minimal counterexample; exit 0 = robust, 2 = counterexample.
  validatedc serve    [--clusters N] [--tors N] [--leaves N] [--spines N]
                      [--shards N] [--ingest-capacity N] [--rounds N] [--churn N]
                      [--seed S] [--engine trie|trie-semantic|smt|smt-semantic]
                      [--metrics <path|->]
      Run the always-on sharded validation service over a simulated
      fleet: a cold sweep, then --rounds rounds of route churn with
      --churn withdrawals each, then a restore round that must
      reconverge to clean. RCDC_ENGINE / RCDC_THREADS / RCDC_SHARDS /
      RCDC_INGEST_CAPACITY set defaults; flags override.
  validatedc plan     [--scenario migrate|decommission] [--racks N]
                      [--condition any|low|medium|high|blackhole]
                      [--no-accept-final] [--max-backtracks N]
                      [--clusters N] [--tors N] [--leaves N] [--spines N]
                      [--seed S] [--engine trie|trie-semantic|smt|smt-semantic]
                      [--threads N] [--metrics <path|->]
      Search for a change ordering whose every intermediate state
      satisfies the contracts. Prints where the naive submit order
      first fails, then the safe plan (exit 0) or the ddmin-minimal
      unsafe change set (exit 2). --no-accept-final also forbids
      violations present in the rollout's end state.
  validatedc check-acl <FILE> [--contract '<src>;<dst>;<dport>;<proto>;<permit|deny>']... [--metrics <path|->]
  validatedc check-nsg <FILE> --db-subnet <PREFIX> --infra <PREFIX> --port <PORT>
  validatedc diff-acl <OLD> <NEW> [--metrics <path|->]
exit status: 0 = clean, 2 = violations found, 1 = error
--metrics: export the metric registry after the run (- = Prometheus on stdout, *.json = JSON file, else Prometheus file)";

fn cmd_validate(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let common = FabricArgs::parse(&opts)?;
    let fail_links: usize = opts.parsed("--fail-links", 0usize)?;
    let metrics_dest = common.metrics;

    let mut topology = build_clos(&common.params);
    eprintln!(
        "generated {} devices / {} links",
        topology.devices().len(),
        topology.links().len()
    );
    if fail_links > 0 {
        let mut rng = StdRng::seed_from_u64(common.seed);
        let n = topology.links().len() as u32;
        for _ in 0..fail_links {
            let l = dctopo::LinkId(rng.gen_range(0..n));
            topology.set_link_state(l, LinkState::OperDown);
            eprintln!("failed link {}", l.0);
        }
    }
    let fibs = simulate(&topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&topology);
    let registry = Registry::new();
    let mut builder = Validator::new(&meta)
        .engine(common.engine)
        .threads(common.threads);
    if metrics_dest.is_some() {
        builder = builder.metrics(&registry);
    }
    let validator = builder.build();
    let report = validator.run(&fibs);
    let rendered =
        validatedc::render::render_validate_report(&report, &topology, &meta, Some(report.elapsed));
    // With metrics on stdout, the human report moves to stderr so the
    // Prometheus exposition stays machine-parseable.
    if metrics_dest == Some("-") {
        eprint!("{rendered}");
    } else {
        print!("{rendered}");
    }
    if let Some(dest) = metrics_dest {
        // The batch pass alone says nothing about the live pipeline,
        // so the export also runs a cold + warm monitoring sweep over
        // the same FIBs (validate-latency histograms, verdict-cache
        // counters) alongside the batch pass's rcdc_pass_* /
        // rcdc_engine_* / rcdc_solver_* families.
        let (cache, analytics) = validatedc::metrics::live_sweep(&meta, &fibs, &registry);
        registry
            .observe_and_snapshot(&[&cache, &analytics, &report])
            .write_to(dest)
            .map_err(|e| format!("cannot write metrics to {dest:?}: {e}"))?;
    }
    Ok(report.is_clean())
}

fn cmd_whatif(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let common = FabricArgs::parse(&opts)?;
    let k: usize = opts.parsed("--k", 1usize)?;
    let condition: FailCondition = opts.value("--condition").unwrap_or("blackhole").parse()?;
    let sample: Option<usize> = match opts.value("--sample") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --sample: {v:?}"))?),
    };
    let fail_links: usize = opts.parsed("--fail-links", 0usize)?;
    let metrics_dest = common.metrics;
    let con = common.console();
    let say = |line: String| con.say(line);

    let mut topology = build_clos(&common.params);
    say(format!(
        "generated {} devices / {} links",
        topology.devices().len(),
        topology.links().len()
    ));
    if fail_links > 0 {
        let mut rng = StdRng::seed_from_u64(common.seed);
        let n = topology.links().len() as u32;
        for _ in 0..fail_links {
            let l = dctopo::LinkId(rng.gen_range(0..n));
            topology.set_link_state(l, LinkState::OperDown);
            say(format!("pre-failed link {}", l.0));
        }
    }
    let meta = MetadataService::from_topology(&topology);
    let registry = Registry::new();
    let mut builder = Validator::new(&meta)
        .engine(common.engine)
        .threads(common.threads);
    if metrics_dest.is_some() {
        builder = builder.metrics(&registry);
    }
    let sweeper = builder.build_whatif(&topology, &SimConfig::healthy());
    let sweep_opts = SweepOptions {
        k,
        include_devices: opts.flag("--devices"),
        symmetry: opts.flag("--symmetry"),
        sample,
        seed: common.seed,
        threads: common.threads,
        exhaustive: opts.flag("--exhaustive"),
        condition,
    };
    let report = sweeper.sweep(&sweep_opts);

    let secs = report.elapsed.as_secs_f64().max(1e-9);
    say(format!(
        "checked {} scenarios ({} pruned) in {:.2}s — {:.0} scenarios/s",
        report.scenarios_checked,
        report.scenarios_pruned,
        secs,
        report.scenarios_checked as f64 / secs,
    ));
    say(format!(
        "restart: {} prefixes touched, {} patched, {} repropagated; \
         {} devices revalidated, {} verdicts reused",
        report.restart.prefixes,
        report.restart.patched,
        report.restart.repropagated,
        report.devices_revalidated,
        report.verdicts_reused,
    ));
    match &report.verdict {
        RobustnessVerdict::Robust(k) => {
            say(format!(
                "VERDICT: Robust({k}) — no checked scenario of <= {k} failure(s) \
                 violates condition '{condition}'"
            ));
        }
        RobustnessVerdict::Counterexample(c) => {
            say(format!(
                "VERDICT: counterexample — {} failure(s) violate condition '{condition}':",
                c.scenario.len()
            ));
            for e in &c.scenario {
                say(format!("  - {}", e.render(sweeper.baseline().topology())));
            }
            say(format!(
                "  -> {} matching violation(s), {} device FIB(s) changed \
                 (minimized from {} failure(s); removing any listed failure passes)",
                c.violations,
                c.changed_devices,
                c.found.len().max(c.scenario.len()),
            ));
        }
    }
    if sweep_opts.exhaustive && report.failing.len() > 1 {
        say(format!(
            "exhaustive mode: {} failing scenarios in total",
            report.failing.len()
        ));
    }
    if let Some(dest) = metrics_dest {
        registry
            .observe_and_snapshot(&[])
            .write_to(dest)
            .map_err(|e| format!("cannot write metrics to {dest:?}: {e}"))?;
    }
    Ok(report.is_robust())
}

fn cmd_serve(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let common = FabricArgs::parse(&opts)?;
    let rounds: usize = opts.parsed("--rounds", 5usize)?;
    let churn: usize = opts.parsed("--churn", 8usize)?;
    let seed = common.seed;
    let metrics_dest = common.metrics;
    let con = common.console();
    let say = |line: String| con.say(line);

    let topology = build_clos(&common.params);
    // The service path owns the machine, so the fleet's initial fixed
    // point defaults to all detected cores (RCDC_SIM_THREADS
    // overrides); the output is bit-identical at any thread count.
    let (fibs, _) = simulate_with(&topology, &SimConfig::healthy(), SimOptions::auto());
    let meta = MetadataService::from_topology(&topology);
    let devices: Vec<DeviceId> = (0..fibs.len() as u32).map(DeviceId).collect();

    // Environment sets the defaults, explicit flags win.
    let mut builder = Validator::new(&meta).from_env()?;
    if let Some(e) = opts.value("--engine") {
        builder = builder.engine(e.parse()?);
    }
    if opts.value("--threads").is_some() {
        builder = builder.threads(opts.parsed("--threads", 0usize)?);
    }
    if opts.value("--shards").is_some() {
        builder = builder.shards(opts.parsed("--shards", 1usize)?);
    }
    if opts.value("--ingest-capacity").is_some() {
        builder = builder.ingest_capacity(opts.parsed("--ingest-capacity", 1024usize)?);
    }

    let source = Arc::new(validatedc::serve::ChurningSource::new(fibs.clone()));
    let service = builder.build_service(source.clone());
    let handle = service.handle();
    say(format!(
        "serve: {} devices across {} shards",
        devices.len(),
        service.shard_count()
    ));

    service.pull_all(&devices);
    service.drain();
    say(format!(
        "cold sweep done: {} dirty devices",
        handle.dirty_count()
    ));

    let mut rng = StdRng::seed_from_u64(seed);
    for round in 1..=rounds {
        for _ in 0..churn {
            let device = devices[rng.gen_range(0..devices.len())];
            let table = if rng.gen_bool(0.25) {
                fibs[device.0 as usize].clone() // heal
            } else {
                validatedc::serve::drop_route(&source.get(device), rng.gen_range(0..64))
            };
            source.set(table);
            service.submit(IngestEvent::Pull(device));
        }
        service.drain();
        say(format!(
            "round {round}: {churn} churn events, {} dirty, {} high-risk alerts",
            handle.dirty_count(),
            handle.alerts(Risk::High).len()
        ));
    }

    // Restore round: heal every table; the service must reconverge.
    for fib in &fibs {
        source.set(fib.clone());
    }
    service.pull_all(&devices);
    service.drain();
    let clean = handle.dirty_count() == 0;
    say(format!(
        "restore round: {} dirty devices",
        handle.dirty_count()
    ));

    let snap = handle.snapshot();
    if let Some(h) = merged_latency(&snap, service.shard_count()) {
        say(format!(
            "notification→verdict latency: p50 {}µs, p99 {}µs over {} verdicts",
            h.p50().unwrap_or(0) / 1_000,
            h.p99().unwrap_or(0) / 1_000,
            h.count
        ));
    }
    if let Some(dest) = metrics_dest {
        snap.write_to(dest)
            .map_err(|e| format!("cannot write metrics to {dest:?}: {e}"))?;
    }
    Ok(clean)
}

fn cmd_plan(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let common = FabricArgs::parse(&opts)?;
    let scenario: RolloutScenario = opts.value("--scenario").unwrap_or("migrate").parse()?;
    let racks: usize = opts.parsed("--racks", 1usize)?;
    let condition: FailCondition = opts.value("--condition").unwrap_or("blackhole").parse()?;
    let accept_final = !opts.flag("--no-accept-final");
    let max_backtracks: usize = opts.parsed("--max-backtracks", 4096usize)?;
    let metrics_dest = common.metrics;
    let con = common.console();
    let say = |line: String| con.say(line);

    let topology = build_clos(&common.params);
    say(format!(
        "generated {} devices / {} links",
        topology.devices().len(),
        topology.links().len()
    ));
    let (net, changes) = seeded_scenario(&topology, scenario, racks, common.seed);
    let render_change = |c: &ConfigChange| match c {
        ConfigChange::SetLinkState { link, state } => {
            let l = &net.topology.links()[link.0 as usize];
            let verb = if matches!(state, LinkState::Up) {
                "bring up"
            } else {
                "shut"
            };
            format!(
                "{verb} {} <-> {}",
                net.topology.device(l.lo).name,
                net.topology.device(l.hi).name
            )
        }
        ConfigChange::SetOverride { device, .. } => {
            format!("override on {}", net.topology.device(*device).name)
        }
    };
    say(format!(
        "scenario {scenario:?}: {} changes over {racks} rack(s), seed {}",
        changes.len(),
        common.seed
    ));

    let meta = MetadataService::from_topology(&net.topology);
    let registry = Registry::new();
    let mut builder = Validator::new(&meta)
        .engine(common.engine)
        .threads(common.threads);
    if metrics_dest.is_some() {
        builder = builder.metrics(&registry);
    }
    let planner = builder.build_planner(&net);
    let plan_opts = PlanOptions {
        condition,
        accept_final,
        max_backtracks,
        threads: common.threads,
    };

    // How far does the operator's submit order get before violating a
    // contract mid-rollout?
    let naive = planner.check_order(&changes, &plan_opts)?;
    match naive.first_unsafe {
        Some(step) => say(format!(
            "naive submit order: UNSAFE at step {} ({}) — {} matching transient violation(s)",
            step + 1,
            render_change(&changes[step]),
            naive.transient,
        )),
        None => say("naive submit order: already safe at every step".to_string()),
    }

    let report = planner.plan(&changes, &plan_opts)?;
    say(format!(
        "searched {} intermediate state(s) in {:.2}s — {} devices revalidated, \
         {} verdicts reused, {} anchors, {} dead-prefix hits, {} backtracks{}",
        report.states_evaluated,
        report.elapsed.as_secs_f64(),
        report.devices_revalidated,
        report.verdicts_reused,
        report.anchors_built,
        report.dead_prefix_hits,
        report.backtracks,
        if report.search_exhausted {
            ""
        } else {
            " (search aborted at the backtrack budget)"
        },
    ));
    match &report.verdict {
        PlanVerdict::Safe(steps) => {
            say(format!(
                "VERDICT: safe plan — {} step(s), every intermediate state satisfies '{condition}'",
                steps.len()
            ));
            for (i, s) in steps.iter().enumerate() {
                say(format!("  {}. {}", i + 1, render_change(&s.change)));
            }
        }
        PlanVerdict::Unsafe(u) => {
            say(format!(
                "VERDICT: no safe ordering — minimal unsafe change set \
                 ({} of {} change(s); removing any one makes the rest orderable):",
                u.prefix.len(),
                changes.len()
            ));
            for s in &u.prefix {
                say(format!("  - {}", render_change(&s.change)));
            }
            for v in u.transient.iter().take(4) {
                say(format!(
                    "  -> {} prefix {}: {}",
                    net.topology.device(v.device).name,
                    v.prefix,
                    v.reason
                ));
            }
        }
    }
    if let Some(dest) = metrics_dest {
        registry
            .observe_and_snapshot(&[])
            .write_to(dest)
            .map_err(|e| format!("cannot write metrics to {dest:?}: {e}"))?;
    }
    Ok(report.is_safe())
}

/// Merge the per-shard notification-latency histograms into one
/// fleet-wide distribution.
fn merged_latency(
    snap: &MetricsSnapshot,
    shards: usize,
) -> Option<obskit::HistogramSnapshot> {
    let mut merged: Option<obskit::HistogramSnapshot> = None;
    for shard in 0..shards {
        if let Some(h) = snap.histogram(
            "rcdc_service_notify_latency_ns",
            &[("shard", &shard.to_string())],
        ) {
            match &mut merged {
                Some(m) => m.merge(h),
                None => merged = Some(h.clone()),
            }
        }
    }
    merged
}

fn parse_inline_contract(spec: &str) -> Result<Contract, String> {
    // "<src>;<dst>;<dport>;<proto>;<permit|deny>", each field may be "any".
    let parts: Vec<&str> = spec.split(';').map(str::trim).collect();
    if parts.len() != 5 {
        return Err(format!(
            "contract {spec:?}: expected 5 ';'-separated fields (src;dst;dport;proto;action)"
        ));
    }
    let parse_side = |tok: &str| -> Result<IpRange, String> {
        if tok.eq_ignore_ascii_case("any") {
            Ok(IpRange::ALL)
        } else {
            tok.parse::<Prefix>()
                .map(|p| p.range())
                .map_err(|e| e.to_string())
        }
    };
    let src = parse_side(parts[0])?;
    let dst = parse_side(parts[1])?;
    let dst_ports = if parts[2].eq_ignore_ascii_case("any") {
        PortRange::ALL
    } else {
        let p: u16 = parts[2].parse().map_err(|_| format!("bad port {:?}", parts[2]))?;
        PortRange::single(p)
    };
    let protocol: Protocol = parts[3].parse().map_err(|e| format!("{e}"))?;
    let expect = match parts[4].to_ascii_lowercase().as_str() {
        "permit" | "allow" => Action::Permit,
        "deny" => Action::Deny,
        other => return Err(format!("bad action {other:?}")),
    };
    Ok(Contract::new(
        spec.to_string(),
        HeaderSpace {
            src,
            src_ports: PortRange::ALL,
            dst,
            dst_ports,
            protocol,
        },
        expect,
    ))
}

fn cmd_check_acl(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let files = opts.positional();
    let [file] = files.as_slice() else {
        return Err("check-acl needs exactly one ACL file".into());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let policy = parse_acl(file, &text).map_err(|e| e.to_string())?;
    eprintln!("parsed {} rules from {file}", policy.len());

    let contracts: Vec<Contract> = {
        let specs = opts.values("--contract");
        if specs.is_empty() {
            eprintln!("no contracts given; running the built-in edge-ACL suite");
            secguru::refactor::edge_contracts()
        } else {
            specs
                .iter()
                .map(|s| parse_inline_contract(s))
                .collect::<Result<_, _>>()?
        }
    };

    let metrics_dest = opts.value("--metrics");
    let registry = Registry::new();
    let mut sg = SecGuru::new(policy);
    if metrics_dest.is_some() {
        sg = sg.metrics(&registry);
    }
    let failures = sg.check_all(&contracts);
    let con = Console::for_dest(metrics_dest);
    let say = |line: String| con.say(line);
    let clean = failures.is_empty();
    if clean {
        say(format!("all {} contracts hold", contracts.len()));
    }
    for f in &failures {
        say(format!(
            "VIOLATED {} — rule {} — witness {}",
            f.contract,
            f.violating_rule.as_deref().unwrap_or("?"),
            f.witness.map(|w| w.to_string()).unwrap_or_default()
        ));
    }
    if let Some(dest) = metrics_dest {
        registry
            .observe_and_snapshot(&[&sg])
            .write_to(dest)
            .map_err(|e| format!("cannot write metrics to {dest:?}: {e}"))?;
    }
    Ok(clean)
}

fn cmd_check_nsg(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let files = opts.positional();
    let [file] = files.as_slice() else {
        return Err("check-nsg needs exactly one NSG file".into());
    };
    let db: Prefix = opts
        .value("--db-subnet")
        .ok_or("--db-subnet required")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let infra: Prefix = opts
        .value("--infra")
        .ok_or("--infra required")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let port: u16 = opts.parsed("--port", 1433u16)?;

    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let nsg = parse_nsg(file, &text).map_err(|e| e.to_string())?;
    let mut api = NsgApi::new(
        VnetMetadata {
            database_subnet: Some(db),
            infra_service: infra,
            backup_port: port,
        },
        true,
    );
    match api.update_policy(nsg) {
        UpdateResult::Accepted => {
            println!("NSG accepted: backup path preserved");
            Ok(true)
        }
        UpdateResult::Rejected(failures) => {
            for f in failures {
                println!(
                    "REJECTED {} — rule {} — witness {}",
                    f.contract,
                    f.violating_rule.as_deref().unwrap_or("?"),
                    f.witness.map(|w| w.to_string()).unwrap_or_default()
                );
            }
            Ok(false)
        }
    }
}

fn cmd_diff_acl(args: &[String]) -> Result<bool, String> {
    let opts = Opts::new(args);
    let files = opts.positional();
    let [old_file, new_file] = files.as_slice() else {
        return Err("diff-acl needs two ACL files".into());
    };
    let old_text = std::fs::read_to_string(old_file).map_err(|e| format!("{old_file}: {e}"))?;
    let new_text = std::fs::read_to_string(new_file).map_err(|e| format!("{new_file}: {e}"))?;
    let old = parse_acl(old_file, &old_text).map_err(|e| e.to_string())?;
    let new = parse_acl(new_file, &new_text).map_err(|e| e.to_string())?;
    let metrics_dest = opts.value("--metrics");
    // The instrumented path diffs with the SMT engine (whose query
    // latencies and solver counters the registry captures); the
    // default path uses the interval baseline. Both are exact.
    let diff = match metrics_dest {
        Some(dest) => {
            let registry = Registry::new();
            let mut smt = SmtDiff::new(&old, &new).metrics(&registry);
            let diff = smt.diff();
            registry
                .observe_and_snapshot(&[&smt])
                .write_to(dest)
                .map_err(|e| format!("cannot write metrics to {dest:?}: {e}"))?;
            diff
        }
        None => semantic_diff(&old, &new),
    };
    let con = Console::for_dest(metrics_dest);
    let say = |line: String| con.say(line);
    match (&diff.newly_denied, &diff.newly_permitted) {
        (None, None) => {
            say("policies are semantically equivalent".to_string());
            Ok(true)
        }
        (denied, permitted) => {
            if let Some(w) = denied {
                say(format!("newly DENIED traffic exists, e.g. {w}"));
            }
            if let Some(w) = permitted {
                say(format!("newly PERMITTED traffic exists, e.g. {w}"));
            }
            Ok(false)
        }
    }
}
