//! Property-based tests for the BGP simulator: structural invariants
//! that must hold for every generated topology and fault set.

use bgpsim::{simulate, SimConfig};
use dctopo::{build_clos, ClosParams, LinkId, LinkState, MetadataService, Role};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ClosParams> {
    (1u32..=3, 1u32..=4, 1u32..=3, 1u32..=2, 1u32..=2).prop_map(
        |(clusters, tors, leaves, spine_per_plane, regionals)| ClosParams {
            clusters,
            tors_per_cluster: tors,
            leaves_per_cluster: leaves,
            spines: leaves * spine_per_plane,
            regional_spines: regionals,
            regional_groups: 1,
            prefixes_per_tor: 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn healthy_fibs_have_full_tables_and_valid_next_hops(params in arb_params()) {
        let topology = build_clos(&params);
        let meta = MetadataService::from_topology(&topology);
        let fibs = simulate(&topology, &SimConfig::healthy());
        let total_prefixes = (params.clusters * params.tors_per_cluster) as usize;
        for d in topology.devices() {
            let fib = &fibs[d.id.0 as usize];
            // Every device sees every hosted prefix plus the default.
            prop_assert_eq!(fib.len(), total_prefixes + 1, "{}", d.name);
            for e in fib.entries() {
                // Every next hop resolves to a *session neighbor*.
                for h in fib.next_hops(e) {
                    let owner = meta.owner_of(*h);
                    prop_assert!(owner.is_some(), "unknown next-hop address");
                    let owner = owner.unwrap();
                    prop_assert!(
                        topology.live_neighbors(d.id).any(|(_, n)| n == owner),
                        "next hop not a live neighbor"
                    );
                }
                // Local entries have no next hops and vice versa.
                prop_assert_eq!(e.local, fib.next_hops(e).is_empty());
            }
        }
    }

    #[test]
    fn fault_injection_never_creates_bogus_routes(
        params in arb_params(),
        fault_seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut topology = build_clos(&params);
        let mut rng = StdRng::seed_from_u64(fault_seed);
        let n_links = topology.links().len() as u32;
        for _ in 0..rng.gen_range(0..=4) {
            let l = LinkId(rng.gen_range(0..n_links));
            topology.set_link_state(
                l,
                if rng.gen_bool(0.5) {
                    LinkState::OperDown
                } else {
                    LinkState::AdminShut
                },
            );
        }
        let fibs = simulate(&topology, &SimConfig::healthy());
        let meta = MetadataService::from_topology(&topology);
        for d in topology.devices() {
            let fib = &fibs[d.id.0 as usize];
            for e in fib.entries() {
                for h in fib.next_hops(e) {
                    let owner = meta.owner_of(*h).expect("hop resolves");
                    // Routes never point over dead links.
                    let link = topology.link_between(d.id, owner).unwrap();
                    prop_assert!(link.state.session_up());
                }
            }
        }
    }

    #[test]
    fn ecmp_sets_are_monotone_under_link_failure(params in arb_params()) {
        // Failing one ToR uplink can only shrink (or preserve) every
        // ECMP set on that ToR, never grow it.
        let mut topology = build_clos(&params);
        let tor = topology.devices_with_role(Role::Tor).next().unwrap().id;
        let before = simulate(&topology, &SimConfig::healthy());
        let link = topology.links_of(tor).next().unwrap().id;
        topology.set_link_state(link, LinkState::OperDown);
        let after = simulate(&topology, &SimConfig::healthy());
        let (fb, fa) = (&before[tor.0 as usize], &after[tor.0 as usize]);
        for ea in fa.entries() {
            if let Some(eb) = fb.entry_for(ea.prefix) {
                prop_assert!(fa.next_hops(ea).len() <= fb.next_hops(eb).len());
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(params in arb_params()) {
        let topology = build_clos(&params);
        let a = simulate(&topology, &SimConfig::healthy());
        let b = simulate(&topology, &SimConfig::healthy());
        prop_assert_eq!(a, b);
    }
}
