//! # bgpsim — EBGP route propagation for Clos datacenters
//!
//! RCDC consumes FIBs; this crate produces them, the way the paper's
//! network does (§2.1–§2.2): every device runs EBGP over point-to-point
//! links, ToRs originate their VLAN prefixes, regional spines originate
//! the default route, nothing is aggregated, and ECMP spreads traffic
//! over all equal-length best paths.
//!
//! The simulation exploits a property of path-vector routing that the
//! paper's own simulator reference \[31\] leans on: with no aggregation,
//! **prefixes propagate independently**, so convergence can be computed
//! one prefix at a time as a monotone shortest-AS-path relaxation with
//! BGP loop prevention. The ASN allocation scheme (shared spine ASN,
//! per-cluster leaf ASN, reused ToR ASNs) is what confines routes to
//! valley-free up/down paths — no explicit policy is needed, exactly as
//! in Azure's design. ToR sessions use allowas-in so prefixes of
//! same-numbered ToRs in other clusters are accepted (§2.1).
//!
//! [`config`] injects every failure mode of the paper's §2.6.2 error
//! taxonomy: RIB→FIB inconsistency, layer-2 port bugs, hardware link
//! failures, administrative drift, migration ASN collisions, route-map
//! misconfigurations, and ECMP misconfigurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fib;
pub mod restart;
pub mod route;
pub mod sim;
pub mod sim_reference;

pub use config::{DeviceOverride, SimConfig};
pub use fib::{Fib, FibBuilder, FibEntry};
pub use restart::{Baseline, FaultSpec, RestartStats, ScenarioFibs};
pub use sim::{simulate, simulate_with, SimOptions, SimStats};
