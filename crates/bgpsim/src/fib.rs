//! Compact forwarding information bases.
//!
//! A device's FIB "is a table, where each entry associates a
//! destination prefix to a set of next hop addresses" (§2.2). FIBs in
//! a hyperscale DC hold thousands of prefixes and next-hop sets repeat
//! massively (every specific route on a ToR shares the same leaf set),
//! so entries store an index into a per-FIB pool of interned next-hop
//! sets — this is what keeps the 10⁴-router experiment within memory.

use dctopo::DeviceId;
use netprim::wire::{DeltaRule, FibDelta, WireEntry, WireSnapshot};
use netprim::{HopSet, Ipv4, ParseError, Prefix};
use std::collections::HashMap;

/// One FIB entry: destination prefix plus interned next-hop set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Index into the owning [`Fib`]'s next-hop-set pool.
    pub set: u32,
    /// Locally originated (the device's own hosted prefix): packets
    /// are delivered below, not forwarded.
    pub local: bool,
}

/// A device's forwarding table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fib {
    device: DeviceId,
    entries: Vec<FibEntry>,
    sets: Vec<Vec<Ipv4>>,
}

/// Incremental FIB construction with next-hop-set interning.
pub struct FibBuilder {
    device: DeviceId,
    entries: Vec<FibEntry>,
    sets: Vec<Vec<Ipv4>>,
    interner: HashMap<Vec<Ipv4>, u32>,
    /// Fast-path interner keyed by [`HopSet`] bitmask. Valid only
    /// relative to the single neighbor table this builder's
    /// [`push_bits`](Self::push_bits) calls share (one device, one
    /// table), which is why it is keyed on the mask alone.
    set_interner: HashMap<HopSet, u32>,
    /// The previous [`intern_bits`](Self::intern_bits) result. The
    /// simulator emits one entry per prefix per device, and on a Clos
    /// almost every consecutive prefix resolves to the same ECMP set
    /// (a ToR reaches every remote /24 through the same leaves), so
    /// this one-entry memo turns the common probe into a 64-byte
    /// compare with no hashing at all.
    last_bits: Option<(HopSet, u32)>,
}

impl FibBuilder {
    /// Start a FIB for a device.
    pub fn new(device: DeviceId) -> Self {
        FibBuilder {
            device,
            entries: Vec::new(),
            sets: Vec::new(),
            interner: HashMap::new(),
            set_interner: HashMap::new(),
            last_bits: None,
        }
    }

    /// Intern a next-hop set (sorted and deduplicated for canonical
    /// comparison — a FIB entry's next hops are a *set*, and repeating
    /// an address must not change how any engine judges the entry).
    pub fn intern(&mut self, mut hops: Vec<Ipv4>) -> u32 {
        hops.sort_unstable();
        hops.dedup();
        if let Some(&id) = self.interner.get(&hops) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(hops.clone());
        self.interner.insert(hops, id);
        id
    }

    /// Intern a next-hop set given as a [`HopSet`] over `table`, the
    /// device's ascending-sorted neighbor-address table (bit `i` ↔
    /// `table[i]`). The hot path of the simulator's emit loop: a
    /// repeated mask costs one 64-byte hash probe instead of a
    /// `Vec` materialize + sort + dedup per entry. All `push_bits`/
    /// `intern_bits` calls on one builder must share one `table`.
    pub fn intern_bits(&mut self, bits: &HopSet, table: &[Ipv4]) -> u32 {
        debug_assert!(table.windows(2).all(|w| w[0] < w[1]));
        if let Some((mask, id)) = self.last_bits {
            if mask == *bits {
                return id;
            }
        }
        if let Some(&id) = self.set_interner.get(bits) {
            self.last_bits = Some((*bits, id));
            return id;
        }
        // Bits iterate ascending over a sorted duplicate-free table,
        // so the materialized vector is already canonical.
        let hops: Vec<Ipv4> = bits.iter().map(|b| table[b as usize]).collect();
        let id = match self.interner.get(&hops) {
            Some(&id) => id,
            None => {
                let id = self.sets.len() as u32;
                self.sets.push(hops.clone());
                self.interner.insert(hops, id);
                id
            }
        };
        self.set_interner.insert(*bits, id);
        self.last_bits = Some((*bits, id));
        id
    }

    /// Append an entry.
    pub fn push(&mut self, prefix: Prefix, hops: Vec<Ipv4>, local: bool) {
        let set = self.intern(hops);
        self.entries.push(FibEntry { prefix, set, local });
    }

    /// Append an entry whose next hops are a [`HopSet`] over `table`
    /// (see [`intern_bits`](Self::intern_bits)).
    pub fn push_bits(&mut self, prefix: Prefix, bits: &HopSet, table: &[Ipv4], local: bool) {
        let set = self.intern_bits(bits, table);
        self.entries.push(FibEntry { prefix, set, local });
    }

    /// Append one entry per prefix, all sharing an already-interned hop
    /// set — the id a prior [`intern`](Self::intern)/
    /// [`intern_bits`](Self::intern_bits) call on *this* builder
    /// returned. The simulator's emit loop run-length encodes each
    /// device's forwarding state over the prefix sequence and expands
    /// the runs here, so the 10⁴-builder sweep appends long streaming
    /// stretches instead of one scattered push per (prefix, device)
    /// pair. Equivalent to pushing each prefix individually in order.
    pub fn extend_run(&mut self, prefixes: &[Prefix], set: u32, local: bool) {
        debug_assert!((set as usize) < self.sets.len(), "unknown interned set id");
        self.entries
            .extend(prefixes.iter().map(|&prefix| FibEntry { prefix, set, local }));
    }

    /// Reserve room for `additional` more entries. The simulator knows
    /// each device's exact entry count before expanding its runs;
    /// reserving once avoids growth reallocations over 10⁴ builders.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve_exact(additional);
    }

    /// Re-play another builder's pushes onto this one, preserving
    /// their push order. Parallel simulation workers each accumulate a
    /// per-device partial table over their own prefix range; absorbing
    /// the workers in range order reproduces the serial push sequence
    /// — and therefore the exact serial [`finish`](Self::finish)
    /// result, interned pool layout included.
    pub fn absorb(&mut self, other: &FibBuilder) {
        for e in &other.entries {
            self.push(e.prefix, other.sets[e.set as usize].clone(), e.local);
        }
    }

    /// Number of entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finish: entries are sorted by descending prefix length, then
    /// address — the longest-prefix-match processing order used by the
    /// verification engines (Definition 2.1).
    ///
    /// Duplicate pushes of the same prefix are collapsed to a single
    /// entry and the *last* push wins, mirroring how a router's RIB
    /// overwrites a re-advertised route and how `apply_delta` treats a
    /// `modified` rule. (The wire decoder is stricter: `Fib::from_wire`
    /// rejects duplicate prefixes outright, because a pulled snapshot
    /// has no push order to break the tie with.) Collapsing here is
    /// what upholds the sorted-uniqueness invariant that `entry_for`'s
    /// binary search and `apply_delta`'s prefix-keyed maps rely on.
    pub fn finish(mut self) -> Fib {
        // The simulator pushes entries in hosted-prefix order (/24s by
        // ascending address, the default last) — already the canonical
        // order, with no duplicates. Strict sortedness implies prefix
        // uniqueness, so the O(n log n) sort and the dedup pass can
        // both be skipped after one linear scan.
        let sorted = self.entries.windows(2).all(|w| {
            w[1].prefix
                .len()
                .cmp(&w[0].prefix.len())
                .then(w[0].prefix.addr().cmp(&w[1].prefix.addr()))
                .is_lt()
        });
        if sorted {
            return Fib {
                device: self.device,
                entries: self.entries,
                sets: self.sets,
            };
        }
        let mut indexed: Vec<(usize, FibEntry)> =
            self.entries.drain(..).enumerate().collect();
        // Sort duplicates latest-push-first, then keep the first of
        // each prefix run (dedup_by retains the earlier element).
        indexed.sort_unstable_by(|(ia, a), (ib, b)| {
            b.prefix
                .len()
                .cmp(&a.prefix.len())
                .then(a.prefix.addr().cmp(&b.prefix.addr()))
                .then(ib.cmp(ia))
        });
        indexed.dedup_by(|(_, a), (_, b)| a.prefix == b.prefix);
        Fib {
            device: self.device,
            entries: indexed.into_iter().map(|(_, e)| e).collect(),
            sets: self.sets,
        }
    }
}

impl Fib {
    /// An empty FIB (e.g. a device with the layer-2 port bug).
    pub fn empty(device: DeviceId) -> Fib {
        Fib {
            device,
            entries: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// Assemble a table directly from pre-canonicalized parts: entries
    /// already in the sorted order [`FibBuilder::finish`] produces, set
    /// ids already deduplicated in first-use order. The restart patcher
    /// splices failure scenarios out of the healthy table this way,
    /// skipping the per-entry interner — the caller owns the proof that
    /// the layout matches what a builder replay would have produced.
    pub(crate) fn from_parts(device: DeviceId, entries: Vec<FibEntry>, sets: Vec<Vec<Ipv4>>) -> Fib {
        debug_assert!(entries.windows(2).all(|w| {
            w[1].prefix
                .len()
                .cmp(&w[0].prefix.len())
                .then(w[0].prefix.addr().cmp(&w[1].prefix.addr()))
                .is_lt()
        }));
        debug_assert!(entries.iter().all(|e| (e.set as usize) < sets.len()));
        Fib {
            device,
            entries,
            sets,
        }
    }

    /// A pool set by id (the restart patcher remaps healthy ids into a
    /// scenario table's pool without re-hashing the vectors).
    pub(crate) fn set(&self, id: u32) -> &[Ipv4] {
        &self.sets[id as usize]
    }

    /// The owning device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Entries, sorted by descending prefix length.
    pub fn entries(&self) -> &[FibEntry] {
        &self.entries
    }

    /// The next-hop addresses of an entry.
    pub fn next_hops(&self, e: &FibEntry) -> &[Ipv4] {
        &self.sets[e.set as usize]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The default-route entry (`0.0.0.0/0`), if present.
    pub fn default_entry(&self) -> Option<&FibEntry> {
        // Sorted by descending length: the default, if any, is last.
        self.entries.last().filter(|e| e.prefix.is_default())
    }

    /// Longest-prefix-match lookup (reference semantics for tests and
    /// the global baseline checker; the production engines use tries).
    ///
    /// Entries are sorted by (descending length, address): within each
    /// length run a binary search finds the unique candidate prefix
    /// containing `ip`, so lookup is O(distinct lengths × log n)
    /// rather than O(n).
    pub fn lookup(&self, ip: Ipv4) -> Option<&FibEntry> {
        let mut i = 0;
        while i < self.entries.len() {
            let len = self.entries[i].prefix.len();
            // End of this length run.
            let run_end = i + self.entries[i..].partition_point(|e| e.prefix.len() == len);
            let run = &self.entries[i..run_end];
            let candidate = Prefix::containing(ip, len).expect("len <= 32");
            if let Ok(k) = run.binary_search_by(|e| e.prefix.addr().cmp(&candidate.addr())) {
                return Some(&run[k]);
            }
            i = run_end;
        }
        None
    }

    /// Find the entry for an exact prefix. Binary search over the
    /// sorted entry order — called once per contract by the strict
    /// engines, so it must not be linear (a 10⁴-router run issues
    /// ~10⁸ of these lookups).
    pub fn entry_for(&self, prefix: Prefix) -> Option<&FibEntry> {
        self.entries
            .binary_search_by(|e| {
                prefix
                    .len()
                    .cmp(&e.prefix.len())
                    .then(e.prefix.addr().cmp(&prefix.addr()))
            })
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Serialize for the puller→validator transfer (§2.6.1).
    pub fn to_wire(&self) -> WireSnapshot {
        WireSnapshot {
            device: self.device.0,
            entries: self
                .entries
                .iter()
                .map(|e| WireEntry {
                    prefix: e.prefix,
                    next_hops: self.next_hops(e).to_vec(),
                })
                .collect(),
        }
    }

    /// Reconstruct from the wire format. Locality cannot be carried on
    /// the wire (real FIB pulls don't carry it either); entries with no
    /// next hops are treated as local.
    ///
    /// A snapshot listing the same prefix twice is rejected: unlike
    /// [`FibBuilder`] pushes there is no meaningful "later wins" order
    /// on the wire, and silently picking one arm would let a corrupted
    /// pull masquerade as a clean table.
    pub fn from_wire(w: &WireSnapshot) -> Result<Fib, ParseError> {
        let mut seen =
            std::collections::HashSet::with_capacity(w.entries.len());
        let mut b = FibBuilder::new(DeviceId(w.device));
        for e in &w.entries {
            if !seen.insert(e.prefix) {
                return Err(ParseError::new(
                    "fib snapshot",
                    "<decode>",
                    format!("duplicate prefix {} in snapshot", e.prefix),
                ));
            }
            let local = e.next_hops.is_empty();
            b.push(e.prefix, e.next_hops.clone(), local);
        }
        Ok(b.finish())
    }

    /// Total number of distinct next-hop sets (compactness statistic).
    pub fn set_pool_len(&self) -> usize {
        self.sets.len()
    }

    /// Stable content hash of the table.
    ///
    /// Covers the device id and every entry (prefix, locality, next
    /// hops) in the canonical sort order, so two `Fib`s built by any
    /// route — simulation, wire decode, delta application — hash equal
    /// iff they forward identically. This is the identity the
    /// incremental pipeline keys on: an unchanged snapshot costs one
    /// hash comparison instead of a validation pass.
    pub fn content_hash(&self) -> u64 {
        // FNV-1a over 64-bit words; stability across runs is what
        // matters (hashes travel inside [`FibDelta`]s), not diffusion.
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| h = (h ^ word).wrapping_mul(PRIME);
        mix(u64::from(self.device.0));
        mix(self.entries.len() as u64);
        for e in &self.entries {
            mix((u64::from(e.prefix.addr().0) << 8) | u64::from(e.prefix.len()));
            let hops = &self.sets[e.set as usize];
            mix((u64::from(e.local) << 32) | hops.len() as u64);
            for nh in hops {
                mix(u64::from(nh.0));
            }
        }
        h
    }

    /// Compute the [`FibDelta`] turning `old` into `new`.
    ///
    /// A merge walk over the shared canonical entry order; rules whose
    /// next hops or locality changed land in `modified`, rules on one
    /// side only in `added`/`removed`. The delta is anchored to both
    /// tables' [`content_hash`](Self::content_hash)es.
    ///
    /// Panics when the two tables belong to different devices.
    pub fn delta(old: &Fib, new: &Fib) -> FibDelta {
        assert_eq!(
            old.device, new.device,
            "delta requires snapshots of the same device"
        );
        let mut delta = FibDelta {
            device: old.device.0,
            base_hash: old.content_hash(),
            new_hash: new.content_hash(),
            ..FibDelta::default()
        };
        let rule = |fib: &Fib, e: &FibEntry| DeltaRule {
            prefix: e.prefix,
            next_hops: fib.next_hops(e).to_vec(),
            local: e.local,
        };
        let (mut i, mut j) = (0, 0);
        while i < old.entries.len() && j < new.entries.len() {
            let (a, b) = (&old.entries[i], &new.entries[j]);
            let ord = b
                .prefix
                .len()
                .cmp(&a.prefix.len())
                .then(a.prefix.addr().cmp(&b.prefix.addr()));
            match ord {
                std::cmp::Ordering::Equal => {
                    if a.local != b.local || old.next_hops(a) != new.next_hops(b) {
                        delta.modified.push(rule(new, b));
                    }
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    delta.removed.push(a.prefix);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.added.push(rule(new, b));
                    j += 1;
                }
            }
        }
        delta.removed.extend(old.entries[i..].iter().map(|e| e.prefix));
        delta
            .added
            .extend(new.entries[j..].iter().map(|e| rule(new, e)));
        delta
    }

    /// Apply a delta, producing the successor table.
    ///
    /// A delta batch is a *set* of per-prefix outcomes, not an ordered
    /// script: the result is the same however the wire happened to
    /// order `added`/`modified`/`removed`. A prefix listed in both
    /// `removed` and `added` nets out to the added rule (remove, then
    /// re-add). Two rules for the same prefix are accepted only when
    /// they agree after next-hop canonicalization; conflicting
    /// duplicates are rejected instead of letting push order silently
    /// pick a winner behind [`FibBuilder::finish`]'s last-push-wins
    /// dedup.
    ///
    /// Fails when the delta was computed against a different base
    /// (hash mismatch — e.g. the device republished between pull and
    /// apply), when it targets another device, when it carries
    /// conflicting rules, or when the result does not hash to the
    /// delta's `new_hash`.
    pub fn apply_delta(&self, delta: &FibDelta) -> Result<Fib, ParseError> {
        let err = |reason: String| ParseError::new("fib delta", "<apply>", reason);
        if delta.device != self.device.0 {
            return Err(err("delta targets a different device".into()));
        }
        if delta.base_hash != self.content_hash() {
            return Err(err("base hash mismatch: delta is stale".into()));
        }
        let canon = |r: &DeltaRule| {
            let mut hops = r.next_hops.clone();
            hops.sort_unstable();
            hops.dedup();
            (hops, r.local)
        };
        let mut changed: HashMap<Prefix, (Vec<Ipv4>, bool)> =
            HashMap::with_capacity(delta.added.len() + delta.modified.len());
        for r in delta.added.iter().chain(&delta.modified) {
            let c = canon(r);
            match changed.entry(r.prefix) {
                std::collections::hash_map::Entry::Occupied(prev) => {
                    if *prev.get() != c {
                        return Err(err(format!(
                            "conflicting delta rules for {}",
                            r.prefix
                        )));
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(c);
                }
            }
        }
        let removed: std::collections::HashSet<Prefix> = delta.removed.iter().copied().collect();
        let mut b = FibBuilder::new(self.device);
        for e in &self.entries {
            if removed.contains(&e.prefix) || changed.contains_key(&e.prefix) {
                continue;
            }
            b.push(e.prefix, self.next_hops(e).to_vec(), e.local);
        }
        // One rule per distinct prefix, so map iteration order cannot
        // affect the canonicalized `finish` result.
        for (prefix, (hops, local)) in changed {
            b.push(prefix, hops, local);
        }
        let next = b.finish();
        if next.content_hash() != delta.new_hash {
            return Err(err(
                "applied delta does not reproduce the target table".into(),
            ));
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn hops(addrs: &[[u8; 4]]) -> Vec<Ipv4> {
        addrs.iter().map(|&o| Ipv4::from(o)).collect()
    }

    fn sample() -> Fib {
        let mut b = FibBuilder::new(DeviceId(9));
        b.push(p("0.0.0.0/0"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        b.push(p("10.0.1.0/24"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        b.push(p("10.0.0.0/24"), vec![], true);
        b.push(p("10.0.0.0/16"), hops(&[[30, 0, 0, 5]]), false);
        b.finish()
    }

    #[test]
    fn entries_sorted_longest_first() {
        let f = sample();
        let lens: Vec<u8> = f.entries().iter().map(|e| e.prefix.len()).collect();
        assert_eq!(lens, vec![24, 24, 16, 0]);
    }

    #[test]
    fn interning_dedupes_sets() {
        let f = sample();
        // Two entries share {30.0.0.1, 30.0.0.3}; plus {} and {30.0.0.5}.
        assert_eq!(f.set_pool_len(), 3);
    }

    #[test]
    fn interning_is_order_insensitive() {
        let mut b = FibBuilder::new(DeviceId(0));
        let a = b.intern(hops(&[[30, 0, 0, 3], [30, 0, 0, 1]]));
        let c = b.intern(hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]));
        assert_eq!(a, c);
    }

    #[test]
    fn longest_prefix_match() {
        let f = sample();
        // 10.0.0.7 matches /24 local, /16, /0 -> the local /24 wins.
        let e = f.lookup(Ipv4::new(10, 0, 0, 7)).unwrap();
        assert_eq!(e.prefix, p("10.0.0.0/24"));
        assert!(e.local);
        // 10.0.9.9 matches /16 and /0 -> /16.
        let e = f.lookup(Ipv4::new(10, 0, 9, 9)).unwrap();
        assert_eq!(e.prefix, p("10.0.0.0/16"));
        // 99.0.0.1 only the default.
        let e = f.lookup(Ipv4::new(99, 0, 0, 1)).unwrap();
        assert!(e.prefix.is_default());
    }

    #[test]
    fn default_entry_found() {
        let f = sample();
        assert!(f.default_entry().is_some());
        let no_default = {
            let mut b = FibBuilder::new(DeviceId(1));
            b.push(p("10.0.0.0/24"), vec![], true);
            b.finish()
        };
        assert!(no_default.default_entry().is_none());
        assert!(Fib::empty(DeviceId(2)).default_entry().is_none());
    }

    #[test]
    fn builder_collapses_duplicate_prefixes_last_push_wins() {
        let mut b = FibBuilder::new(DeviceId(4));
        b.push(p("10.0.0.0/24"), hops(&[[30, 0, 0, 1]]), false);
        b.push(p("10.0.0.0/16"), hops(&[[30, 0, 0, 5]]), false);
        b.push(p("10.0.0.0/24"), hops(&[[30, 0, 0, 2]]), false);
        let f = b.finish();
        assert_eq!(f.len(), 2);
        let e = f.entry_for(p("10.0.0.0/24")).unwrap();
        // Re-advertisement overwrites: the later push's hops win.
        assert_eq!(f.next_hops(e), &[Ipv4::new(30, 0, 0, 2)]);
        // The sorted-uniqueness invariant holds for binary search.
        assert_eq!(
            f.lookup(Ipv4::new(10, 0, 0, 9)).unwrap().prefix,
            p("10.0.0.0/24")
        );
    }

    #[test]
    fn from_wire_rejects_duplicate_prefixes() {
        let mut w = sample().to_wire();
        let dup = w.entries[0].clone();
        w.entries.push(dup);
        let err = Fib::from_wire(&w).unwrap_err();
        assert!(err.to_string().contains("duplicate prefix"));
        // The encoded form round-trips through the codec but is still
        // rejected at the Fib layer.
        let w2 = WireSnapshot::decode(&w.encode()).unwrap();
        assert!(Fib::from_wire(&w2).is_err());
    }

    #[test]
    fn intern_dedupes_repeated_hop_addresses() {
        // {a, a} and {a} are the same next-hop set; if interning kept
        // the duplicate, the trie engine (vector equality) and the SMT
        // engine (boolean disjunction) would disagree about whether the
        // entry meets a contract expecting {a}.
        let mut b = FibBuilder::new(DeviceId(5));
        let one = b.intern(hops(&[[30, 0, 0, 1]]));
        let dup = b.intern(hops(&[[30, 0, 0, 1], [30, 0, 0, 1]]));
        assert_eq!(one, dup);
        b.push(
            p("10.0.0.0/24"),
            hops(&[[30, 0, 0, 3], [30, 0, 0, 3], [30, 0, 0, 1]]),
            false,
        );
        let f = b.finish();
        let e = f.entry_for(p("10.0.0.0/24")).unwrap();
        assert_eq!(
            f.next_hops(e),
            &[Ipv4::new(30, 0, 0, 1), Ipv4::new(30, 0, 0, 3)]
        );
    }

    #[test]
    fn wire_round_trip() {
        let f = sample();
        let w = f.to_wire();
        let back = Fib::from_wire(&w).unwrap();
        assert_eq!(back.device(), f.device());
        assert_eq!(back.len(), f.len());
        for (a, b) in f.entries().iter().zip(back.entries()) {
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(f.next_hops(a), back.next_hops(b));
            assert_eq!(a.local, b.local);
        }
    }

    #[test]
    fn entry_for_exact_prefix() {
        let f = sample();
        assert!(f.entry_for(p("10.0.0.0/16")).is_some());
        assert!(f.entry_for(p("10.0.0.0/20")).is_none());
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        let f = sample();
        assert_eq!(f.content_hash(), sample().content_hash());
        // Insertion order does not matter (finish() canonicalizes).
        let mut b = FibBuilder::new(DeviceId(9));
        b.push(p("10.0.0.0/16"), hops(&[[30, 0, 0, 5]]), false);
        b.push(p("10.0.0.0/24"), vec![], true);
        b.push(p("10.0.1.0/24"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        b.push(p("0.0.0.0/0"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        assert_eq!(b.finish().content_hash(), f.content_hash());
        // Device, hops, locality, and membership all discriminate.
        let mut b = FibBuilder::new(DeviceId(10));
        for e in f.entries() {
            b.push(e.prefix, f.next_hops(e).to_vec(), e.local);
        }
        assert_ne!(b.finish().content_hash(), f.content_hash());
        let mut b = FibBuilder::new(DeviceId(9));
        for e in f.entries() {
            let mut h = f.next_hops(e).to_vec();
            if e.prefix == p("10.0.0.0/16") {
                h.pop();
            }
            b.push(e.prefix, h, e.local);
        }
        assert_ne!(b.finish().content_hash(), f.content_hash());
        let mut b = FibBuilder::new(DeviceId(9));
        for e in f.entries() {
            b.push(
                e.prefix,
                f.next_hops(e).to_vec(),
                e.local ^ (e.prefix == p("10.0.0.0/24")),
            );
        }
        assert_ne!(b.finish().content_hash(), f.content_hash());
        assert_ne!(Fib::empty(DeviceId(9)).content_hash(), f.content_hash());
    }

    fn modified_sample() -> Fib {
        let mut b = FibBuilder::new(DeviceId(9));
        // default unchanged
        b.push(p("0.0.0.0/0"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        // 10.0.1.0/24 modified (hops truncated)
        b.push(p("10.0.1.0/24"), hops(&[[30, 0, 0, 1]]), false);
        // 10.0.0.0/24 local unchanged
        b.push(p("10.0.0.0/24"), vec![], true);
        // 10.0.0.0/16 removed; 10.2.0.0/16 added
        b.push(p("10.2.0.0/16"), hops(&[[30, 0, 0, 7]]), false);
        b.finish()
    }

    #[test]
    fn delta_classifies_changes() {
        let old = sample();
        let new = modified_sample();
        let d = Fib::delta(&old, &new);
        assert_eq!(d.device, 9);
        assert_eq!(d.base_hash, old.content_hash());
        assert_eq!(d.new_hash, new.content_hash());
        assert_eq!(
            d.added.iter().map(|r| r.prefix).collect::<Vec<_>>(),
            vec![p("10.2.0.0/16")]
        );
        assert_eq!(
            d.modified.iter().map(|r| r.prefix).collect::<Vec<_>>(),
            vec![p("10.0.1.0/24")]
        );
        assert_eq!(d.removed, vec![p("10.0.0.0/16")]);
        // Self-delta is empty.
        assert!(Fib::delta(&old, &old).is_empty());
    }

    #[test]
    fn apply_delta_reproduces_target() {
        let old = sample();
        let new = modified_sample();
        let d = Fib::delta(&old, &new);
        // Round-trip through the wire format, like the live pipeline.
        let d = netprim::wire::FibDelta::decode(&d.encode()).unwrap();
        let applied = old.apply_delta(&d).unwrap();
        // Same forwarding content (set-pool indices may differ).
        assert_eq!(applied.content_hash(), new.content_hash());
        for (a, b) in applied.entries().iter().zip(new.entries()) {
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(applied.next_hops(a), new.next_hops(b));
            assert_eq!(a.local, b.local);
        }
    }

    #[test]
    fn apply_delta_rejects_stale_or_foreign_deltas() {
        let old = sample();
        let new = modified_sample();
        let d = Fib::delta(&old, &new);
        // Wrong base: applying to the target instead of the base.
        assert!(new.apply_delta(&d).is_err());
        // Wrong device.
        let other = Fib::empty(DeviceId(3));
        assert!(other.apply_delta(&d).is_err());
        // Tampered target hash.
        let mut bad = d.clone();
        bad.new_hash ^= 1;
        assert!(old.apply_delta(&bad).is_err());
    }

    #[test]
    fn apply_delta_readd_after_remove_is_order_insensitive() {
        // Regression: a delta that removes a prefix and re-adds it in
        // the same batch (device withdrew then re-advertised between
        // pulls, coalesced by the collector) must apply identically
        // however the wire ordered the arms — the re-added rule wins,
        // not whichever arm the apply loop happened to visit last.
        let old = sample();
        let readd = p("10.0.0.0/16");
        let mut b = FibBuilder::new(DeviceId(9));
        for e in old.entries() {
            if e.prefix == readd {
                continue;
            }
            b.push(e.prefix, old.next_hops(e).to_vec(), e.local);
        }
        b.push(readd, hops(&[[30, 0, 0, 8]]), false);
        let new = b.finish();
        let mut d = Fib::delta(&old, &new);
        // The merge walk classifies this as `modified`; rewrite it as
        // the remove + re-add shape the collector coalesces to.
        assert_eq!(
            d.modified.iter().map(|r| r.prefix).collect::<Vec<_>>(),
            vec![readd]
        );
        let rule = d.modified.pop().unwrap();
        d.removed.push(readd);
        d.added.push(rule);
        // Replay through the wire codec, as difftest would.
        let d = netprim::wire::FibDelta::decode(&d.encode()).unwrap();
        let applied = old.apply_delta(&d).unwrap();
        assert_eq!(applied.content_hash(), new.content_hash());
        assert_eq!(applied.len(), new.len());
        let e = applied.entry_for(readd).unwrap();
        assert_eq!(applied.next_hops(e), &[Ipv4::new(30, 0, 0, 8)]);
    }

    #[test]
    fn apply_delta_rejects_conflicting_duplicate_rules() {
        let old = sample();
        let new = modified_sample();
        let mut d = Fib::delta(&old, &new);
        // Duplicate the modified rule with different hops: no push
        // order may silently decide which one wins.
        let mut dup = d.modified[0].clone();
        dup.next_hops = hops(&[[30, 0, 0, 99]]);
        d.added.push(dup);
        let err = old.apply_delta(&d).unwrap_err();
        assert!(err.to_string().contains("conflicting delta rules"));

        // An agreeing duplicate (same set, different address order) is
        // harmless and still reproduces the target.
        let mut d = Fib::delta(&old, &new);
        let mut dup = d.modified[0].clone();
        dup.next_hops.reverse();
        d.added.push(dup);
        let applied = old.apply_delta(&d).unwrap();
        assert_eq!(applied.content_hash(), new.content_hash());
    }

    #[test]
    fn push_bits_interns_like_push() {
        // The bitset path and the Vec path must agree on pool identity
        // and canonical hop order, whichever interleaving occurs.
        let table = hops(&[[30, 0, 0, 1], [30, 0, 0, 3], [30, 0, 0, 5]]);
        let mut b = FibBuilder::new(DeviceId(2));
        let bits: HopSet = [0u16, 2].into_iter().collect();
        b.push_bits(p("10.0.0.0/24"), &bits, &table, false);
        b.push(
            p("10.0.1.0/24"),
            hops(&[[30, 0, 0, 5], [30, 0, 0, 1]]),
            false,
        );
        b.push_bits(p("10.0.2.0/24"), &HopSet::new(), &table, true);
        let f = b.finish();
        assert_eq!(f.set_pool_len(), 2, "vec and bitset pushes share sets");
        let a = f.entry_for(p("10.0.0.0/24")).unwrap();
        let c = f.entry_for(p("10.0.1.0/24")).unwrap();
        assert_eq!(a.set, c.set);
        assert_eq!(
            f.next_hops(a),
            &[Ipv4::new(30, 0, 0, 1), Ipv4::new(30, 0, 0, 5)]
        );
        let l = f.entry_for(p("10.0.2.0/24")).unwrap();
        assert!(l.local);
        assert!(f.next_hops(l).is_empty());
    }

    #[test]
    fn absorb_replays_pushes_in_order() {
        // Serial pushes vs two absorbed partial builders: identical
        // tables, interned pool layout included.
        let build = |b: &mut FibBuilder, range: std::ops::Range<u8>| {
            for i in range {
                b.push(
                    p(&format!("10.0.{i}.0/24")),
                    hops(&[[30, 0, 0, i % 3 + 1]]),
                    false,
                );
            }
        };
        let mut serial = FibBuilder::new(DeviceId(7));
        build(&mut serial, 0..8);
        let mut w0 = FibBuilder::new(DeviceId(7));
        build(&mut w0, 0..5);
        let mut w1 = FibBuilder::new(DeviceId(7));
        build(&mut w1, 5..8);
        assert_eq!(w0.len(), 5);
        assert!(!w1.is_empty());
        let mut merged = FibBuilder::new(DeviceId(7));
        merged.absorb(&w0);
        merged.absorb(&w1);
        assert_eq!(merged.finish(), serial.finish());
    }

    #[test]
    fn delta_preserves_locality_with_hops() {
        // A locally originated rule that records next hops survives a
        // delta round trip (full snapshots cannot express this; deltas
        // carry locality explicitly).
        let mut b = FibBuilder::new(DeviceId(1));
        b.push(p("10.0.0.0/24"), hops(&[[30, 0, 0, 9]]), true);
        let old = b.finish();
        let mut b = FibBuilder::new(DeviceId(1));
        b.push(p("10.0.0.0/24"), hops(&[[30, 0, 0, 9]]), false);
        let new = b.finish();
        let d = Fib::delta(&old, &new);
        assert_eq!(d.modified.len(), 1);
        assert!(!d.modified[0].local);
        assert_eq!(old.apply_delta(&d).unwrap(), new);
    }
}
