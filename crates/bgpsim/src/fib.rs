//! Compact forwarding information bases.
//!
//! A device's FIB "is a table, where each entry associates a
//! destination prefix to a set of next hop addresses" (§2.2). FIBs in
//! a hyperscale DC hold thousands of prefixes and next-hop sets repeat
//! massively (every specific route on a ToR shares the same leaf set),
//! so entries store an index into a per-FIB pool of interned next-hop
//! sets — this is what keeps the 10⁴-router experiment within memory.

use dctopo::DeviceId;
use netprim::wire::{WireEntry, WireSnapshot};
use netprim::{Ipv4, ParseError, Prefix};
use std::collections::HashMap;

/// One FIB entry: destination prefix plus interned next-hop set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Index into the owning [`Fib`]'s next-hop-set pool.
    pub set: u32,
    /// Locally originated (the device's own hosted prefix): packets
    /// are delivered below, not forwarded.
    pub local: bool,
}

/// A device's forwarding table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fib {
    device: DeviceId,
    entries: Vec<FibEntry>,
    sets: Vec<Vec<Ipv4>>,
}

/// Incremental FIB construction with next-hop-set interning.
pub struct FibBuilder {
    device: DeviceId,
    entries: Vec<FibEntry>,
    sets: Vec<Vec<Ipv4>>,
    interner: HashMap<Vec<Ipv4>, u32>,
}

impl FibBuilder {
    /// Start a FIB for a device.
    pub fn new(device: DeviceId) -> Self {
        FibBuilder {
            device,
            entries: Vec::new(),
            sets: Vec::new(),
            interner: HashMap::new(),
        }
    }

    /// Intern a next-hop set (sorted for canonical comparison).
    pub fn intern(&mut self, mut hops: Vec<Ipv4>) -> u32 {
        hops.sort_unstable();
        if let Some(&id) = self.interner.get(&hops) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(hops.clone());
        self.interner.insert(hops, id);
        id
    }

    /// Append an entry.
    pub fn push(&mut self, prefix: Prefix, hops: Vec<Ipv4>, local: bool) {
        let set = self.intern(hops);
        self.entries.push(FibEntry { prefix, set, local });
    }

    /// Finish: entries are sorted by descending prefix length, then
    /// address — the longest-prefix-match processing order used by the
    /// verification engines (Definition 2.1).
    pub fn finish(mut self) -> Fib {
        self.entries
            .sort_unstable_by(|a, b| {
                b.prefix
                    .len()
                    .cmp(&a.prefix.len())
                    .then(a.prefix.addr().cmp(&b.prefix.addr()))
            });
        Fib {
            device: self.device,
            entries: self.entries,
            sets: self.sets,
        }
    }
}

impl Fib {
    /// An empty FIB (e.g. a device with the layer-2 port bug).
    pub fn empty(device: DeviceId) -> Fib {
        Fib {
            device,
            entries: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// The owning device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Entries, sorted by descending prefix length.
    pub fn entries(&self) -> &[FibEntry] {
        &self.entries
    }

    /// The next-hop addresses of an entry.
    pub fn next_hops(&self, e: &FibEntry) -> &[Ipv4] {
        &self.sets[e.set as usize]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The default-route entry (`0.0.0.0/0`), if present.
    pub fn default_entry(&self) -> Option<&FibEntry> {
        // Sorted by descending length: the default, if any, is last.
        self.entries.last().filter(|e| e.prefix.is_default())
    }

    /// Longest-prefix-match lookup (reference semantics for tests and
    /// the global baseline checker; the production engines use tries).
    ///
    /// Entries are sorted by (descending length, address): within each
    /// length run a binary search finds the unique candidate prefix
    /// containing `ip`, so lookup is O(distinct lengths × log n)
    /// rather than O(n).
    pub fn lookup(&self, ip: Ipv4) -> Option<&FibEntry> {
        let mut i = 0;
        while i < self.entries.len() {
            let len = self.entries[i].prefix.len();
            // End of this length run.
            let run_end = i + self.entries[i..].partition_point(|e| e.prefix.len() == len);
            let run = &self.entries[i..run_end];
            let candidate = Prefix::containing(ip, len).expect("len <= 32");
            if let Ok(k) = run.binary_search_by(|e| e.prefix.addr().cmp(&candidate.addr())) {
                return Some(&run[k]);
            }
            i = run_end;
        }
        None
    }

    /// Find the entry for an exact prefix. Binary search over the
    /// sorted entry order — called once per contract by the strict
    /// engines, so it must not be linear (a 10⁴-router run issues
    /// ~10⁸ of these lookups).
    pub fn entry_for(&self, prefix: Prefix) -> Option<&FibEntry> {
        self.entries
            .binary_search_by(|e| {
                prefix
                    .len()
                    .cmp(&e.prefix.len())
                    .then(e.prefix.addr().cmp(&prefix.addr()))
            })
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Serialize for the puller→validator transfer (§2.6.1).
    pub fn to_wire(&self) -> WireSnapshot {
        WireSnapshot {
            device: self.device.0,
            entries: self
                .entries
                .iter()
                .map(|e| WireEntry {
                    prefix: e.prefix,
                    next_hops: self.next_hops(e).to_vec(),
                })
                .collect(),
        }
    }

    /// Reconstruct from the wire format. Locality cannot be carried on
    /// the wire (real FIB pulls don't carry it either); entries with no
    /// next hops are treated as local.
    pub fn from_wire(w: &WireSnapshot) -> Result<Fib, ParseError> {
        let mut b = FibBuilder::new(DeviceId(w.device));
        for e in &w.entries {
            let local = e.next_hops.is_empty();
            b.push(e.prefix, e.next_hops.clone(), local);
        }
        Ok(b.finish())
    }

    /// Total number of distinct next-hop sets (compactness statistic).
    pub fn set_pool_len(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn hops(addrs: &[[u8; 4]]) -> Vec<Ipv4> {
        addrs.iter().map(|&o| Ipv4::from(o)).collect()
    }

    fn sample() -> Fib {
        let mut b = FibBuilder::new(DeviceId(9));
        b.push(p("0.0.0.0/0"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        b.push(p("10.0.1.0/24"), hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]), false);
        b.push(p("10.0.0.0/24"), vec![], true);
        b.push(p("10.0.0.0/16"), hops(&[[30, 0, 0, 5]]), false);
        b.finish()
    }

    #[test]
    fn entries_sorted_longest_first() {
        let f = sample();
        let lens: Vec<u8> = f.entries().iter().map(|e| e.prefix.len()).collect();
        assert_eq!(lens, vec![24, 24, 16, 0]);
    }

    #[test]
    fn interning_dedupes_sets() {
        let f = sample();
        // Two entries share {30.0.0.1, 30.0.0.3}; plus {} and {30.0.0.5}.
        assert_eq!(f.set_pool_len(), 3);
    }

    #[test]
    fn interning_is_order_insensitive() {
        let mut b = FibBuilder::new(DeviceId(0));
        let a = b.intern(hops(&[[30, 0, 0, 3], [30, 0, 0, 1]]));
        let c = b.intern(hops(&[[30, 0, 0, 1], [30, 0, 0, 3]]));
        assert_eq!(a, c);
    }

    #[test]
    fn longest_prefix_match() {
        let f = sample();
        // 10.0.0.7 matches /24 local, /16, /0 -> the local /24 wins.
        let e = f.lookup(Ipv4::new(10, 0, 0, 7)).unwrap();
        assert_eq!(e.prefix, p("10.0.0.0/24"));
        assert!(e.local);
        // 10.0.9.9 matches /16 and /0 -> /16.
        let e = f.lookup(Ipv4::new(10, 0, 9, 9)).unwrap();
        assert_eq!(e.prefix, p("10.0.0.0/16"));
        // 99.0.0.1 only the default.
        let e = f.lookup(Ipv4::new(99, 0, 0, 1)).unwrap();
        assert!(e.prefix.is_default());
    }

    #[test]
    fn default_entry_found() {
        let f = sample();
        assert!(f.default_entry().is_some());
        let no_default = {
            let mut b = FibBuilder::new(DeviceId(1));
            b.push(p("10.0.0.0/24"), vec![], true);
            b.finish()
        };
        assert!(no_default.default_entry().is_none());
        assert!(Fib::empty(DeviceId(2)).default_entry().is_none());
    }

    #[test]
    fn wire_round_trip() {
        let f = sample();
        let w = f.to_wire();
        let back = Fib::from_wire(&w).unwrap();
        assert_eq!(back.device(), f.device());
        assert_eq!(back.len(), f.len());
        for (a, b) in f.entries().iter().zip(back.entries()) {
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(f.next_hops(a), back.next_hops(b));
            assert_eq!(a.local, b.local);
        }
    }

    #[test]
    fn entry_for_exact_prefix() {
        let f = sample();
        assert!(f.entry_for(p("10.0.0.0/16")).is_some());
        assert!(f.entry_for(p("10.0.0.0/20")).is_none());
    }
}
