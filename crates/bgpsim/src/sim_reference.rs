//! The pre-rewrite convergence engine, frozen as a baseline.
//!
//! This is the simulator exactly as it stood before the hot-path
//! raw-speed pass: per-hop `Vec<Ipv4>` accumulation, per-entry
//! config-override probes in emit, no interning memo — the code whose
//! cost the E17 benchmark reports as "legacy". It is kept verbatim
//! (not re-expressed through the new internals) so the speedup the
//! benchmark measures is against the genuinely shipped article, and so
//! equivalence suites can hold the optimized [`crate::sim`] engine to
//! bit-identical FIB output forever. Do not optimize this module.

use crate::config::SimConfig;
use crate::fib::{Fib, FibBuilder};
use dctopo::{Asn, DeviceId, LinkId, Role, Topology};
use netprim::{Ipv4, Prefix};


const INF: u8 = u8::MAX;
/// Upper bound on AS-path length in a 4-tier Clos (loop prevention
/// caps real paths at 4; 16 leaves margin for override experiments).
const MAX_LEN: usize = 16;

struct Session {
    peer: DeviceId,
    /// This device's own interface address on the shared link — the
    /// next-hop address the *peer* programs to reach this device.
    local_addr: Ipv4,
    link: LinkId,
}

/// Scratch state reused across prefixes.
struct Relaxation {
    best: Vec<u8>,
    parent: Vec<DeviceId>,
    hops: Vec<Vec<Ipv4>>,
    touched: Vec<DeviceId>,
    buckets: Vec<Vec<DeviceId>>,
}

impl Relaxation {
    fn new(n: usize) -> Self {
        Relaxation {
            best: vec![INF; n],
            parent: vec![DeviceId(0); n],
            hops: vec![Vec::new(); n],
            touched: Vec::new(),
            buckets: vec![Vec::new(); MAX_LEN],
        }
    }

    fn reset(&mut self) {
        for &d in &self.touched {
            self.best[d.0 as usize] = INF;
            self.hops[d.0 as usize].clear();
        }
        self.touched.clear();
        for b in &mut self.buckets {
            b.clear();
        }
    }
}

/// Simulate EBGP convergence with the frozen pre-rewrite engine,
/// returning one FIB per device (indexed by device id). Must agree
/// with [`crate::simulate`] on every input, bit for bit.
pub fn simulate(topology: &Topology, config: &SimConfig) -> Vec<Fib> {
    let n = topology.len();

    // Effective ASNs (migration overrides applied).
    let asn: Vec<Asn> = topology
        .devices()
        .iter()
        .map(|d| {
            config
                .device(d.id)
                .and_then(|o| o.asn_override)
                .unwrap_or(d.asn)
        })
        .collect();

    let l2_bug: Vec<bool> = topology
        .devices()
        .iter()
        .map(|d| config.device(d.id).is_some_and(|o| o.l2_port_bug))
        .collect();

    // Session adjacency over healthy links between non-L2-bugged devices.
    let mut sessions: Vec<Vec<Session>> = (0..n).map(|_| Vec::new()).collect();
    for l in topology.links() {
        if !l.state.session_up() {
            continue;
        }
        if l2_bug[l.lo.0 as usize] || l2_bug[l.hi.0 as usize] {
            continue;
        }
        sessions[l.lo.0 as usize].push(Session {
            peer: l.hi,
            local_addr: l.lo_addr,
            link: l.id,
        });
        sessions[l.hi.0 as usize].push(Session {
            peer: l.lo,
            local_addr: l.hi_addr,
            link: l.id,
        });
    }
    let _ = &sessions; // borrow below
    let allowas_in: Vec<bool> = topology
        .devices()
        .iter()
        .map(|d| d.role == Role::Tor)
        .collect();

    let mut builders: Vec<FibBuilder> = topology
        .devices()
        .iter()
        .map(|d| FibBuilder::new(d.id))
        .collect();

    let mut relax = Relaxation::new(n);

    // Work items: every hosted prefix (origin: its ToR) and the default
    // route (origins: all regional spines).
    let mut work: Vec<(Prefix, Vec<DeviceId>)> = topology
        .all_hosted()
        .map(|(tor, prefix)| (prefix, vec![tor]))
        .collect();
    let regionals: Vec<DeviceId> = topology
        .devices_with_role(Role::RegionalSpine)
        .map(|d| d.id)
        .collect();
    work.push((Prefix::DEFAULT, regionals));

    for (prefix, origins) in work {
        relax.reset();
        propagate(
            topology,
            config,
            &sessions,
            &asn,
            &allowas_in,
            &mut relax,
            prefix,
            &origins,
        );
        emit(topology, config, &relax, prefix, &origins, &mut builders);
    }

    builders.into_iter().map(FibBuilder::finish).collect()
}

/// Does the AS path advertised by `from` (walked via BFS parents)
/// contain `receiver_asn`? The advertised path is
/// `asn(from), asn(parent(from)), …, asn(origin)`.
fn path_contains(
    relax: &Relaxation,
    asn: &[Asn],
    mut from: DeviceId,
    receiver_asn: Asn,
) -> bool {
    loop {
        if asn[from.0 as usize] == receiver_asn {
            return true;
        }
        let len = relax.best[from.0 as usize];
        if len == 0 {
            return false; // reached an origin
        }
        from = relax.parent[from.0 as usize];
    }
}

#[allow(clippy::too_many_arguments)]
fn propagate(
    topology: &Topology,
    config: &SimConfig,
    sessions: &[Vec<Session>],
    asn: &[Asn],
    allowas_in: &[bool],
    relax: &mut Relaxation,
    prefix: Prefix,
    origins: &[DeviceId],
) {
    let is_default = prefix.is_default();
    for &o in origins {
        // An origin with the L2 bug still "hosts" the prefix but cannot
        // announce it (no sessions) — handled naturally since its
        // session list is empty.
        relax.best[o.0 as usize] = 0;
        relax.touched.push(o);
        relax.buckets[0].push(o);
    }
    let _ = topology;

    for level in 0..MAX_LEN - 1 {
        if relax.buckets[level].is_empty() {
            continue;
        }
        let senders = std::mem::take(&mut relax.buckets[level]);
        for d in senders {
            let du = d.0 as usize;
            if relax.best[du] != level as u8 {
                continue; // stale entry; improved earlier
            }
            for s in &sessions[du] {
                let nu = s.peer.0 as usize;
                let nl = level as u8 + 1;
                let cur = relax.best[nu];
                if nl > cur {
                    continue;
                }
                // Import policy: default-route rejection (§2.6.2).
                if is_default
                    && config
                        .device(s.peer)
                        .is_some_and(|o| o.reject_default_import)
                {
                    continue;
                }
                // BGP loop prevention on the receiver, unless allowas-in.
                if !allowas_in[nu] && path_contains(relax, asn, d, asn[nu]) {
                    continue;
                }
                // Self-announcement guard: an origin never reimports.
                if relax.best[nu] == 0 {
                    continue;
                }
                if nl < cur {
                    if cur == INF {
                        relax.touched.push(s.peer);
                    }
                    relax.best[nu] = nl;
                    relax.parent[nu] = d;
                    relax.hops[nu].clear();
                    relax.hops[nu].push(s.local_addr);
                    relax.buckets[nl as usize].push(s.peer);
                } else {
                    // Equal length: extend the ECMP set.
                    let hops = &mut relax.hops[nu];
                    if !hops.contains(&s.local_addr) {
                        hops.push(s.local_addr);
                    }
                }
                let _ = s.link;
            }
        }
    }
}

fn emit(
    topology: &Topology,
    config: &SimConfig,
    relax: &Relaxation,
    prefix: Prefix,
    origins: &[DeviceId],
    builders: &mut [FibBuilder],
) {
    let is_default = prefix.is_default();
    for &d in &relax.touched {
        let du = d.0 as usize;
        let len = relax.best[du];
        debug_assert_ne!(len, INF);
        if len == 0 {
            // Origin: ToRs install their hosted prefix as local.
            // Regional spines originate the default (modeled as local
            // too: it points out of the datacenter).
            builders[du].push(prefix, Vec::new(), true);
            continue;
        }
        let mut hops = relax.hops[du].clone();
        hops.sort_unstable();
        if let Some(o) = config.device(d) {
            if let Some(k) = o.max_ecmp {
                hops.truncate(k.max(1));
            }
            if is_default {
                if let Some(k) = o.rib_fib_default_hops {
                    hops.truncate(k.max(1));
                }
            }
        }
        builders[du].push(prefix, hops, false);
    }
    let _ = (topology, origins);
}


#[cfg(test)]
mod tests {
    use super::*;
    use dctopo::generator::{build_clos, figure3, ClosParams};

    /// The optimized engine must reproduce the frozen baseline bit for
    /// bit — interned pool layout included — on a healthy fabric and
    /// under every override the emit path honors.
    #[test]
    fn optimized_engine_matches_frozen_baseline() {
        let f = figure3();
        let faulted = SimConfig::healthy()
            .with_max_ecmp(f.tors[0], 2)
            .with_rib_fib_bug(f.tors[1], 1)
            .with_default_reject(f.a[0])
            .with_l2_port_bug(f.b[1])
            .with_asn_override(f.b[0], f.topology.device(f.a[0]).asn);
        for config in [SimConfig::healthy(), faulted] {
            assert_eq!(
                simulate(&f.topology, &config),
                crate::simulate(&f.topology, &config)
            );
        }
        let medium = build_clos(&ClosParams::default());
        assert_eq!(
            simulate(&medium, &SimConfig::healthy()),
            crate::simulate(&medium, &SimConfig::healthy())
        );
    }

    /// A fabric where one layer's devices have more neighbors than a
    /// `HopSet` can index: a single fat leaf seeing 256 ToRs plus 260
    /// spines = 516 sessions > 512 bits. That device must take the
    /// per-device Vec spill path — and still match the baseline bit
    /// for bit — without dragging the rest of the fabric off the
    /// bitset fast path.
    #[test]
    fn over_capacity_device_spills_and_matches_baseline() {
        let params = ClosParams {
            clusters: 1,
            tors_per_cluster: 256,
            leaves_per_cluster: 1,
            spines: 260,
            regional_spines: 1,
            regional_groups: 1,
            prefixes_per_tor: 1,
        };
        let t = build_clos(&params);
        let config = SimConfig::healthy();
        assert_eq!(simulate(&t, &config), crate::simulate(&t, &config));
    }
}
