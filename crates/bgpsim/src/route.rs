//! AS-path utilities.

use dctopo::Asn;

/// The private ASN band (RFC 6996 16-bit range), extended to include
/// the reserved 65535 that Azure's scheme assigns to spines (§2.1,
/// Figure 1). Everything in this band is stripped by regional spines.
pub const PRIVATE_ASN_MIN: u32 = 64512;
/// Upper end of the stripped band (includes reserved 65535).
pub const PRIVATE_ASN_MAX: u32 = 65535;

/// Is this ASN in the stripped (private/reserved) band?
pub const fn is_private(asn: Asn) -> bool {
    asn.0 >= PRIVATE_ASN_MIN && asn.0 <= PRIVATE_ASN_MAX
}

/// Remove private ASNs from an AS path — what the regional spines do
/// "when relaying the routes received from the spine devices… to
/// prohibit ASN collisions between different datacenters" (§2.1).
pub fn strip_private_asns(path: &[Asn]) -> Vec<Asn> {
    path.iter().copied().filter(|&a| !is_private(a)).collect()
}

/// Does the path contain the given ASN (BGP loop prevention)?
pub fn contains_asn(path: &[Asn], asn: Asn) -> bool {
    path.contains(&asn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_band_boundaries() {
        assert!(!is_private(Asn(64511)));
        assert!(is_private(Asn(64512)));
        assert!(is_private(Asn(65100)));
        assert!(is_private(Asn(65534)));
        assert!(is_private(Asn(65535)));
        assert!(!is_private(Asn(8075)));
    }

    #[test]
    fn stripping_removes_only_private() {
        let path = vec![Asn(64900), Asn(65535), Asn(65533), Asn(8075)];
        assert_eq!(strip_private_asns(&path), vec![Asn(8075)]);
        assert_eq!(strip_private_asns(&[]), Vec::<Asn>::new());
    }

    #[test]
    fn loop_detection() {
        let path = vec![Asn(65535), Asn(65533), Asn(65100)];
        assert!(contains_asn(&path, Asn(65533)));
        assert!(!contains_asn(&path, Asn(65101)));
    }
}
