//! Fault-injected fixed-point restart: converge a failure scenario
//! from the healthy solution instead of from scratch.
//!
//! A k-failure what-if sweep evaluates thousands of scenarios against
//! one fabric, and each scenario differs from the healthy network by a
//! handful of dead links. Re-running [`simulate`](crate::simulate) per
//! scenario repeats almost all of its work: the per-prefix BFS is a
//! function of the session graph, and most prefixes never route through
//! the dead links at all. [`Baseline`] snapshots the healthy fixed
//! point once and then answers each scenario by *patching* it:
//!
//! * A dead session edge `s → r` matters for a prefix only if it
//!   carried a minimal-distance advertisement in the healthy run —
//!   `best[s] + 1 == best[r]` and `s`'s address is in `r`'s hop set.
//!   Edges that never contributed leave the prefix untouched.
//! * If the edge contributed but `r` keeps other equal-length senders,
//!   the fixed point without the edge differs only in `r`'s hop mask.
//!   Distances, discovery order and every other device's hops are
//!   unchanged, so the patch is a single bit clear. When the dead edge
//!   was `r`'s BFS *parent*, the re-run would pick another parent; the
//!   patch is still exact whenever the prefix is *tie-break-free* —
//!   every multi-sender device's candidate parents advertise identical
//!   AS-path sequences, so any parent choice produces the same
//!   observables (acceptance verdicts and hop masks). Tie-break
//!   freedom is a property of the healthy state, computed once at
//!   [`Baseline::converge`]; generated Clos fabrics satisfy it for
//!   every prefix (same-tier ECMP senders share ASN sequences).
//! * Anything else — a hop set emptied, a non-tie-break-free parent
//!   lost — falls back to re-running the per-prefix BFS on the faulted
//!   session graph, which is exact by construction. Fallbacks are the
//!   rare case, and only the affected prefixes pay for them.
//!
//! Changed FIBs are *spliced*, not rebuilt: a candidate device's new
//! table copies the healthy entry sequence and recomputes only the
//! affected prefixes, remapping interned set ids in first-use order —
//! the same content-keyed order a from-scratch interner assigns — so
//! the result, pool layout included, is bit-identical to a
//! from-scratch `simulate` on the faulted topology at a fraction of
//! the per-entry cost. The regression suite pins this for every
//! single-link failure on a seeded Clos.

use crate::config::SimConfig;
use crate::fib::{Fib, FibBuilder, FibEntry};
use crate::sim::{
    emit_runs, expand_runs, propagate, work_list, EmitRle, Hops, Relaxation, SimNet, SimStats, INF,
};
use dctopo::{Asn, DeviceId, LinkId, LinkState, Topology};
use netprim::{HopSet, Ipv4, Prefix};
use std::collections::{HashMap, HashSet};

/// One failure scenario: a set of links and devices to take down
/// simultaneously. A dead device is modeled as all of its incident
/// links going down (it still originates its hosted prefixes locally,
/// exactly as a from-scratch simulation of the faulted topology would).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Links to fail.
    pub links: Vec<LinkId>,
    /// Devices to fail (all incident links go down).
    pub devices: Vec<DeviceId>,
}

impl FaultSpec {
    /// A scenario failing exactly these links.
    pub fn links(links: impl IntoIterator<Item = LinkId>) -> FaultSpec {
        FaultSpec {
            links: links.into_iter().collect(),
            devices: Vec::new(),
        }
    }

    /// A scenario failing exactly these devices.
    pub fn devices(devices: impl IntoIterator<Item = DeviceId>) -> FaultSpec {
        FaultSpec {
            links: Vec::new(),
            devices: devices.into_iter().collect(),
        }
    }

    /// No failures at all (the healthy network).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.devices.is_empty()
    }

    /// Apply the scenario to a topology by marking every named link —
    /// and every link incident to a named device — `OperDown`. This is
    /// the from-scratch view of the scenario, used by the oracles to
    /// cross-check [`Baseline::resimulate`].
    pub fn apply(&self, topology: &mut Topology) {
        let mut dead: Vec<LinkId> = self.links.clone();
        for &d in &self.devices {
            dead.extend(topology.links_of(d).map(|l| l.id));
        }
        for l in dead {
            topology.set_link_state(l, LinkState::OperDown);
        }
    }
}

/// Work counters for one [`Baseline::resimulate`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartStats {
    /// Prefixes in the work list (hosted + default).
    pub prefixes: usize,
    /// Prefixes repaired by hop-mask patching alone.
    pub patched: usize,
    /// Prefixes that fell back to a from-scratch per-prefix BFS.
    pub repropagated: usize,
    /// Devices whose FIB actually changed.
    pub devices_changed: usize,
}

impl RestartStats {
    /// Merge another scenario's counters into this one (sweep totals).
    pub fn absorb(&mut self, other: &RestartStats) {
        self.prefixes += other.prefixes;
        self.patched += other.patched;
        self.repropagated += other.repropagated;
        self.devices_changed += other.devices_changed;
    }
}

/// The outcome of one scenario: only the FIBs that differ from the
/// healthy solution, plus work counters.
#[derive(Debug, Clone)]
pub struct ScenarioFibs {
    /// Changed devices and their new tables, ascending by device id.
    pub changed: Vec<(DeviceId, Fib)>,
    /// Aligned with `changed`: the prefixes whose rules differ from the
    /// healthy table (added, removed, or re-hopped), in canonical entry
    /// order. Incremental validators turn these directly into a
    /// [`FibDelta`](netprim::wire::FibDelta) without re-diffing the
    /// full tables.
    pub touched: Vec<Vec<Prefix>>,
    /// Work counters for this scenario.
    pub stats: RestartStats,
}

impl ScenarioFibs {
    /// Materialize the scenario's full FIB vector by splicing the
    /// changed tables over the healthy ones.
    pub fn splice(&self, healthy: &[Fib]) -> Vec<Fib> {
        let mut out = healthy.to_vec();
        for (d, fib) in &self.changed {
            out[d.0 as usize] = fib.clone();
        }
        out
    }
}

/// One prefix's converged state, snapshotted from the relaxation
/// scratch. Hop data is only valid where `0 < best < INF` (origins
/// emit local entries, unreached devices emit nothing).
struct PrefixState {
    /// BFS distance per device (`INF` = unreached).
    best: Vec<u8>,
    /// BFS parent per device (valid where `0 < best < INF`).
    parent: Vec<u32>,
    /// Hop mask over the device's neighbor-address table (devices
    /// whose table fits a [`HopSet`]).
    bits: Vec<HopSet>,
    /// Hop addresses for over-capacity devices (rare; unsorted, the
    /// relaxation's insertion order).
    spill: HashMap<u32, Vec<Ipv4>>,
    /// Every multi-sender device's candidate parents advertise equal
    /// AS-path sequences, so a parent-edge death still patches exactly.
    tie_free: bool,
}

/// The healthy fixed point, snapshotted per prefix, ready to answer
/// failure scenarios incrementally. Shared-state only: `resimulate`
/// takes `&self`, so one baseline serves a parallel scenario driver.
pub struct Baseline {
    topology: Topology,
    config: SimConfig,
    net: SimNet,
    l2_bug: Vec<bool>,
    work: Vec<(Prefix, Vec<DeviceId>)>,
    states: Vec<PrefixState>,
    healthy: Vec<Fib>,
    /// The work list's prefixes are strictly canonical-ordered (the
    /// generated fabrics always are), so a healthy table's entry
    /// sequence is the work list filtered by reachability and the
    /// patch splicer can walk both with one cursor. A non-canonical
    /// work list (possible for hand-built topologies) falls back to
    /// full per-device replay, which sorts in `finish`.
    canonical_work: bool,
}

impl Baseline {
    /// Converge the healthy network and snapshot its per-prefix state.
    pub fn converge(topology: &Topology, config: &SimConfig) -> Baseline {
        let n = topology.len();
        let net = SimNet::build(topology, config);
        let l2_bug: Vec<bool> = topology
            .devices()
            .iter()
            .map(|d| config.device(d.id).is_some_and(|o| o.l2_port_bug))
            .collect();
        let mut bit_peer: Vec<Vec<u32>> =
            net.addr_table.iter().map(|t| vec![0; t.len()]).collect();
        for l in topology.links() {
            let (lo, hi) = (l.lo.0 as usize, l.hi.0 as usize);
            let bl = net.addr_table[lo]
                .binary_search(&l.hi_addr)
                .expect("link address is in the owner's table");
            bit_peer[lo][bl] = l.hi.0;
            let bh = net.addr_table[hi]
                .binary_search(&l.lo_addr)
                .expect("link address is in the owner's table");
            bit_peer[hi][bh] = l.lo.0;
        }
        let work = work_list(topology);
        let canonical_work = work.windows(2).all(|w| {
            w[1].0
                .len()
                .cmp(&w[0].0.len())
                .then(w[0].0.addr().cmp(&w[1].0.addr()))
                .is_lt()
        });
        // One pass does both jobs: snapshot each prefix's converged
        // state for the scenario patcher, and emit the healthy tables
        // through the simulator's own run-length path — the exact
        // serial push sequence `simulate` performs, so the healthy
        // FIBs are bit-identical by construction, not by replay.
        let mut relax = Relaxation::new(n, true);
        let mut sim_stats = SimStats::default();
        let mut states = Vec::with_capacity(work.len());
        let mut rle = EmitRle::new(n);
        let mut builders: Vec<FibBuilder> = topology
            .devices()
            .iter()
            .map(|d| FibBuilder::new(d.id))
            .collect();
        for (k, (prefix, origins)) in work.iter().enumerate() {
            relax.reset();
            propagate(&net, &mut relax, *prefix, origins, &mut sim_stats);
            let mut st = snapshot(&net, &relax);
            st.tie_free = tie_break_free(&st, &net.asn, &net.addr_table, &bit_peer);
            states.push(st);
            emit_runs(&net, &relax, k as u32, *prefix, &mut rle, &mut builders);
        }
        let prefixes: Vec<Prefix> = work.iter().map(|(p, _)| *p).collect();
        expand_runs(&rle, &prefixes, &mut builders);
        let healthy: Vec<Fib> = builders.into_iter().map(FibBuilder::finish).collect();
        Baseline {
            topology: topology.clone(),
            config: config.clone(),
            net,
            l2_bug,
            work,
            states,
            healthy,
            canonical_work,
        }
    }

    /// The healthy FIBs (bit-identical to `simulate(topology, config)`).
    pub fn healthy_fibs(&self) -> &[Fib] {
        &self.healthy
    }

    /// The topology this baseline was converged on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The config this baseline was converged under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Re-simulate one failure scenario from the healthy solution.
    ///
    /// Returns exactly the devices whose FIBs change, each table
    /// bit-identical (interned pool layout included) to what a
    /// from-scratch [`simulate`](crate::simulate) of the faulted
    /// topology would produce.
    pub fn resimulate(&self, fault: &FaultSpec) -> ScenarioFibs {
        let n = self.topology.len();
        let mut dead_devices: HashSet<u32> = fault.devices.iter().map(|d| d.0).collect();
        let mut dead_links: HashSet<LinkId> = fault.links.iter().copied().collect();
        for &d in &fault.devices {
            dead_links.extend(self.topology.links_of(d).map(|l| l.id));
        }

        // A live device whose every live session edge died is
        // indistinguishable from a dead one: `FaultSpec::apply` marks
        // all incident links down either way, so the from-scratch run
        // reaches it for no prefix and it emits only its hosted-local
        // entries. Synthesizing it as dead keeps full-isolation
        // scenarios (a decommissioned rack's every uplink shut) on the
        // patch path; otherwise its emptied hop set would cascade a
        // per-prefix BFS fallback for nearly every prefix in the
        // fabric.
        let live_session = |l: &dctopo::Link| {
            l.state.session_up() && !self.l2_bug[l.lo.0 as usize] && !self.l2_bug[l.hi.0 as usize]
        };
        let endpoints: HashSet<u32> = dead_links
            .iter()
            .flat_map(|&lid| {
                let l = self.topology.link(lid);
                [l.lo.0, l.hi.0]
            })
            .collect();
        for &d in &endpoints {
            if !dead_devices.contains(&d)
                && self
                    .topology
                    .links_of(DeviceId(d))
                    .all(|l| !live_session(l) || dead_links.contains(&l.id))
            {
                dead_devices.insert(d);
            }
        }

        // Directed dead session edges actually present in the healthy
        // session graph (already-down or L2-bugged links never carried
        // advertisements, so killing them changes nothing).
        let mut edges: Vec<(u32, u32, u16)> = Vec::new();
        for &lid in &dead_links {
            let l = self.topology.link(lid);
            if !l.state.session_up() {
                continue;
            }
            let (lo, hi) = (l.lo.0 as usize, l.hi.0 as usize);
            if self.l2_bug[lo] || self.l2_bug[hi] {
                continue;
            }
            let bit = |owner: usize, addr: Ipv4| {
                self.net.addr_table[owner]
                    .binary_search(&addr)
                    .expect("session address is in the peer's table") as u16
            };
            edges.push((l.lo.0, l.hi.0, bit(hi, l.lo_addr)));
            edges.push((l.hi.0, l.lo.0, bit(lo, l.hi_addr)));
        }
        edges.sort_unstable();

        let mut stats = RestartStats {
            prefixes: self.work.len(),
            ..RestartStats::default()
        };
        // Per receiver: the (prefix index, neighbor-table bits) pairs
        // to clear, ascending in prefix index (the analysis loop runs
        // in work order). A prefix is either fully patchable or
        // re-propagated, never both, so patches and scenario states
        // stay disjoint.
        let mut patches: HashMap<u32, Vec<(u32, Vec<u16>)>> = HashMap::new();
        let mut fallback: Vec<u32> = Vec::new();
        let mut candidates: HashSet<u32> = HashSet::new();
        for (k, st) in self.states.iter().enumerate() {
            let mut removed: HashMap<u32, Vec<u16>> = HashMap::new();
            let mut needs_fallback = false;
            for &(s, r, bit) in &edges {
                if dead_devices.contains(&r) {
                    continue; // dead receivers are synthesized below
                }
                let (su, ru) = (s as usize, r as usize);
                let (bs, br) = (st.best[su], st.best[ru]);
                if bs == INF || br == 0 || br == INF || bs + 1 != br {
                    continue; // edge never carried a minimal-path route
                }
                let contributed = match st.spill.get(&r) {
                    Some(sp) => sp.contains(&self.net.addr_table[ru][bit as usize]),
                    None => st.bits[ru].contains(bit),
                };
                if !contributed {
                    continue;
                }
                if st.parent[ru] == s && !st.tie_free {
                    // A parent died and a re-run's tie-break could pick
                    // a parent with a different AS path: not patchable.
                    needs_fallback = true;
                    break;
                }
                removed.entry(r).or_default().push(bit);
            }
            if !needs_fallback {
                // An emptied hop set changes the receiver's distance
                // and cascades; only the BFS knows where to.
                needs_fallback = removed.iter().any(|(&r, bits_rm)| {
                    let healthy_len = match st.spill.get(&r) {
                        Some(sp) => sp.len(),
                        None => st.bits[r as usize].len() as usize,
                    };
                    healthy_len == bits_rm.len()
                });
            }
            if needs_fallback {
                fallback.push(k as u32);
            } else if !removed.is_empty() {
                stats.patched += 1;
                for (r, bits_rm) in removed {
                    candidates.insert(r);
                    patches.entry(r).or_default().push((k as u32, bits_rm));
                }
            }
        }

        // Fallback prefixes: exact per-prefix BFS on the faulted graph.
        // The per-device diff against the healthy state records *which*
        // fallback prefixes moved each device, so the splice recomputes
        // only those — an unchanged per-prefix state is guaranteed to
        // re-emit the healthy rule, so skipping it is byte-identical.
        let mut scen_states: HashMap<u32, PrefixState> = HashMap::new();
        let mut fallback_of: HashMap<u32, Vec<u32>> = HashMap::new();
        if !fallback.is_empty() {
            stats.repropagated = fallback.len();
            let fnet = SimNet::build_filtered(&self.topology, &self.config, &dead_links);
            let mut relax = Relaxation::new(n, true);
            let mut sim_stats = SimStats::default();
            for &k in &fallback {
                let (prefix, origins) = &self.work[k as usize];
                relax.reset();
                propagate(&fnet, &mut relax, *prefix, origins, &mut sim_stats);
                let st = snapshot(&self.net, &relax);
                let healthy = &self.states[k as usize];
                for du in 0..n {
                    if !dead_devices.contains(&(du as u32))
                        && !state_eq_at(healthy, &st, du, &self.net)
                    {
                        candidates.insert(du as u32);
                        // Ascending in k: the fallback list is sorted.
                        fallback_of.entry(du as u32).or_default().push(k);
                    }
                }
                scen_states.insert(k, st);
            }
        }
        candidates.extend(dead_devices.iter().copied());

        // Rebuild every candidate and keep only genuine changes. Live
        // candidates on a canonical work list take the splice path:
        // copy the healthy entry run, recompute only affected
        // prefixes, remap set ids. Everything else replays in full.
        let mut sorted: Vec<u32> = candidates.into_iter().collect();
        sorted.sort_unstable();
        let mut changed = Vec::new();
        let mut touched = Vec::new();
        const NO_PATCHES: &[(u32, Vec<u16>)] = &[];
        const NO_FALLBACK: &[u32] = &[];
        for d in sorted {
            let dead = dead_devices.contains(&d);
            let patched = patches.get(&d).map_or(NO_PATCHES, Vec::as_slice);
            let dev_fallback = fallback_of.get(&d).map_or(NO_FALLBACK, Vec::as_slice);
            if !dead && self.canonical_work {
                if let Some((fib, diff)) =
                    self.splice_device(d, patched, dev_fallback, &scen_states)
                {
                    changed.push((DeviceId(d), fib));
                    touched.push(diff);
                }
                continue;
            }
            let fib = self.replay_device(d, dead, &scen_states, patched);
            if fib != self.healthy[d as usize] {
                let diff = diff_prefixes(&self.healthy[d as usize], &fib);
                changed.push((DeviceId(d), fib));
                touched.push(diff);
            }
        }
        stats.devices_changed = changed.len();
        ScenarioFibs {
            changed,
            touched,
            stats,
        }
    }

    /// Splice one live candidate's scenario table out of its healthy
    /// one: visit only the affected work indices (this device's
    /// patches merged with the fallback prefixes), bulk-copying the
    /// healthy entry run before each one — located by binary search in
    /// canonical order — and recomputing just the affected emissions.
    /// Set ids are remapped in first-use order of distinct content —
    /// exactly the order a from-scratch interner assigns — so the
    /// table is bit-identical to a full replay, pool layout included,
    /// without hashing a single hop vector.
    ///
    /// Returns `None` when every recomputed entry matches the healthy
    /// table (e.g. a cleared hop bit that ECMP truncation had already
    /// dropped), otherwise the new table plus the differing prefixes
    /// in canonical entry order.
    fn splice_device(
        &self,
        d: u32,
        patched: &[(u32, Vec<u16>)],
        fallback: &[u32],
        scen_states: &HashMap<u32, PrefixState>,
    ) -> Option<(Fib, Vec<Prefix>)> {
        let du = d as usize;
        let healthy = &self.healthy[du];
        let h_entries = healthy.entries();
        let mut hi = 0usize;
        let mut entries: Vec<FibEntry> = Vec::with_capacity(h_entries.len() + 1);
        let mut sets: Vec<Vec<Ipv4>> = Vec::new();
        // healthy pool id -> new pool id, assigned lazily at first use.
        let mut h_map: Vec<u32> = vec![u32::MAX; healthy.set_pool_len()];
        let mut touched: Vec<Prefix> = Vec::new();
        // New-pool ids holding recomputed (non-healthy-origin)
        // content. Healthy sets are pairwise distinct, so a healthy
        // first-use can only collide with one of these — probing the
        // whole pool per first-use would be quadratic in pool size.
        let mut novel: Vec<u32> = Vec::new();
        // Recomputed content can collide with anything already in the
        // pool; calls are rare (one per divergent emission), so a
        // linear scan is fine.
        fn intern_vec(sets: &mut Vec<Vec<Ipv4>>, novel: &mut Vec<u32>, v: Vec<Ipv4>) -> u32 {
            match sets.iter().position(|s| *s == v) {
                Some(i) => i as u32,
                None => {
                    sets.push(v);
                    let id = (sets.len() - 1) as u32;
                    novel.push(id);
                    id
                }
            }
        }
        fn map_healthy(
            healthy: &Fib,
            sets: &mut Vec<Vec<Ipv4>>,
            h_map: &mut [u32],
            novel: &[u32],
            hid: u32,
        ) -> u32 {
            if h_map[hid as usize] != u32::MAX {
                return h_map[hid as usize];
            }
            let content = healthy.set(hid);
            let id = match novel.iter().find(|&&i| sets[i as usize] == content) {
                Some(&i) => i,
                None => {
                    sets.push(content.to_vec());
                    (sets.len() - 1) as u32
                }
            };
            h_map[hid as usize] = id;
            id
        }
        // Bulk-copy a healthy run after divergence. Most ids still map
        // to themselves (divergence appends to or reuses the pool, it
        // rarely reorders it), so maximal identity-mapped stretches go
        // through memcpy and only the exceptions pay a per-entry remap.
        fn copy_remapped(
            healthy: &Fib,
            sets: &mut Vec<Vec<Ipv4>>,
            h_map: &mut [u32],
            novel: &[u32],
            entries: &mut Vec<FibEntry>,
            run: &[FibEntry],
        ) {
            let mut j = 0usize;
            while j < run.len() {
                let start = j;
                while j < run.len() && h_map[run[j].set as usize] == run[j].set {
                    j += 1;
                }
                entries.extend_from_slice(&run[start..j]);
                if j == run.len() {
                    break;
                }
                let e = run[j];
                let set = map_healthy(healthy, sets, h_map, novel, e.set);
                entries.push(FibEntry { set, ..e });
                j += 1;
            }
        }
        // Until the first content divergence the new table is a
        // verbatim prefix of the healthy one, so its pool first-use
        // order matches and every set id maps to itself: entry runs
        // are copied wholesale with no bookkeeping. The first
        // divergence materializes the interner state by replaying the
        // first-uses seen so far (an index probe per entry; the ids
        // come out identity by construction).
        let mut diverged = false;
        fn diverge_now(
            diverged: &mut bool,
            entries: &[FibEntry],
            healthy: &Fib,
            sets: &mut Vec<Vec<Ipv4>>,
            h_map: &mut [u32],
        ) {
            if *diverged {
                return;
            }
            *diverged = true;
            for e in entries {
                if h_map[e.set as usize] == u32::MAX {
                    debug_assert_eq!(sets.len() as u32, e.set, "verbatim prefix must map identity");
                    h_map[e.set as usize] = sets.len() as u32;
                    sets.push(healthy.set(e.set).to_vec());
                }
            }
        }
        // Canonical entry order: descending prefix length, ascending
        // address (what `Fib` stores and a canonical work list emits).
        let canonical_less = |a: Prefix, b: Prefix| {
            a.len() > b.len() || (a.len() == b.len() && a.addr() < b.addr())
        };
        // Merge this device's patches with the fallback prefixes (both
        // ascending in work index, disjoint by construction).
        let (mut pi, mut fi) = (0usize, 0usize);
        loop {
            let np = patched.get(pi).map_or(u32::MAX, |&(k, _)| k);
            let nf = fallback.get(fi).copied().unwrap_or(u32::MAX);
            if np == u32::MAX && nf == u32::MAX {
                break;
            }
            let (k, removed) = if np < nf {
                pi += 1;
                (np as usize, Some(patched[pi - 1].1.as_slice()))
            } else {
                fi += 1;
                (nf as usize, None)
            };
            let prefix = self.work[k].0;
            // Bulk-copy the healthy run strictly before the affected
            // prefix; only set ids can differ, and only after a novel
            // set entered the pool.
            let until =
                hi + h_entries[hi..].partition_point(|e| canonical_less(e.prefix, prefix));
            if diverged {
                copy_remapped(healthy, &mut sets, &mut h_map, &novel, &mut entries, &h_entries[hi..until]);
            } else {
                entries.extend_from_slice(&h_entries[hi..until]);
            }
            hi = until;
            let h_entry = h_entries.get(hi).filter(|e| e.prefix == prefix).copied();
            // Recompute this device's faulted emission.
            let cap = if prefix.is_default() {
                self.net.default_cap[du]
            } else {
                self.net.ecmp_cap[du]
            };
            let (present, local, hops) = if let Some(bits_rm) = removed {
                // Patch receivers kept other senders: still reached,
                // never an origin.
                (true, false, emit_hops(&self.states[k], du, bits_rm, cap, &self.net))
            } else {
                let st = &scen_states[&(k as u32)];
                match st.best[du] {
                    INF => (false, false, Vec::new()),
                    0 => (true, true, Vec::new()),
                    _ => (true, false, emit_hops(st, du, &[], cap, &self.net)),
                }
            };
            match (h_entry, present) {
                (Some(e), true) => {
                    hi += 1;
                    if e.local == local && healthy.next_hops(&e) == hops.as_slice() {
                        // Recomputed to the same rule (e.g. the dead
                        // bit was beyond the ECMP cap): copy through.
                        if diverged {
                            let set = map_healthy(healthy, &mut sets, &mut h_map, &novel, e.set);
                            entries.push(FibEntry { set, ..e });
                        } else {
                            entries.push(e);
                        }
                    } else {
                        diverge_now(&mut diverged, &entries, healthy, &mut sets, &mut h_map);
                        touched.push(prefix);
                        let set = intern_vec(&mut sets, &mut novel, hops);
                        entries.push(FibEntry {
                            prefix,
                            set,
                            local,
                        });
                    }
                }
                (Some(_), false) => {
                    hi += 1;
                    diverge_now(&mut diverged, &entries, healthy, &mut sets, &mut h_map);
                    touched.push(prefix);
                }
                (None, true) => {
                    diverge_now(&mut diverged, &entries, healthy, &mut sets, &mut h_map);
                    touched.push(prefix);
                    let set = intern_vec(&mut sets, &mut novel, hops);
                    entries.push(FibEntry {
                        prefix,
                        set,
                        local,
                    });
                }
                (None, false) => {}
            }
        }
        if touched.is_empty() {
            // Every affected emission recomputed to its healthy rule:
            // the table is unchanged (and `entries` is still the
            // verbatim copy — no interner state was ever needed).
            return None;
        }
        // Tail: every healthy entry after the last affected prefix.
        copy_remapped(healthy, &mut sets, &mut h_map, &novel, &mut entries, &h_entries[hi..]);
        Some((Fib::from_parts(DeviceId(d), entries, sets), touched))
    }

    /// Rebuild one device's table by replaying the canonical emission
    /// order over (healthy | patched | re-propagated | dead) per-prefix
    /// states — the same push sequence `simulate` performs, so the
    /// finished table matches it bit-for-bit. The slow exact path,
    /// kept for dead devices (tiny tables) and non-canonical work
    /// lists; live candidates normally take
    /// [`splice_device`](Self::splice_device).
    fn replay_device(
        &self,
        d: u32,
        dead: bool,
        scen_states: &HashMap<u32, PrefixState>,
        patched: &[(u32, Vec<u16>)],
    ) -> Fib {
        let du = d as usize;
        let mut builder = FibBuilder::new(DeviceId(d));
        const NO_REMOVALS: &[u16] = &[];
        let mut pi = 0usize;
        for (k, (prefix, origins)) in self.work.iter().enumerate() {
            let removed: &[u16] = match patched.get(pi) {
                Some((pk, bits)) if *pk as usize == k => {
                    pi += 1;
                    bits
                }
                _ => NO_REMOVALS,
            };
            if dead {
                // A dead device keeps originating its hosted prefixes
                // locally (its from-scratch faulted run has best == 0
                // there and INF everywhere else).
                if origins.contains(&DeviceId(d)) {
                    builder.push(*prefix, Vec::new(), true);
                }
                continue;
            }
            let cap = if prefix.is_default() {
                self.net.default_cap[du]
            } else {
                self.net.ecmp_cap[du]
            };
            let (st, removed) = match scen_states.get(&(k as u32)) {
                Some(st) => (st, NO_REMOVALS),
                None => (&self.states[k], removed),
            };
            push_state(&mut builder, st, du, *prefix, cap, removed, &self.net);
        }
        builder.finish()
    }
}

/// One device's faulted emission for one prefix: the snapshotted hop
/// state minus `removed` neighbor-table bits, canonicalized and
/// cap-truncated exactly as the simulator's emit loop would
/// (sort → truncate → dedup; bit order is already address order on the
/// bitset path, so truncating the mask keeps the smallest addresses).
fn emit_hops(
    st: &PrefixState,
    du: usize,
    removed: &[u16],
    cap: u32,
    net: &SimNet,
) -> Vec<Ipv4> {
    match st.spill.get(&(du as u32)) {
        Some(sp) => {
            let mut h = sp.clone();
            for &bit in removed {
                let addr = net.addr_table[du][bit as usize];
                h.retain(|&x| x != addr);
            }
            h.sort_unstable();
            h.truncate(cap as usize);
            h.dedup();
            h
        }
        None => {
            let mut mask = st.bits[du];
            for &bit in removed {
                mask.remove(bit);
            }
            if cap != u32::MAX && cap < mask.len() {
                mask.truncate(cap);
            }
            mask.iter()
                .map(|bit| net.addr_table[du][bit as usize])
                .collect()
        }
    }
}

/// The prefixes on which two canonical-ordered tables disagree
/// (present on one side only, or differing in locality or next hops),
/// in canonical entry order — the slow-path counterpart of the
/// bookkeeping [`Baseline::splice_device`] does inline.
fn diff_prefixes(old: &Fib, new: &Fib) -> Vec<Prefix> {
    let (a, b) = (old.entries(), new.entries());
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let (x, y) = (&a[i], &b[j]);
        let ord = y
            .prefix
            .len()
            .cmp(&x.prefix.len())
            .then(x.prefix.addr().cmp(&y.prefix.addr()));
        match ord {
            std::cmp::Ordering::Equal => {
                if x.local != y.local || old.next_hops(x) != new.next_hops(y) {
                    out.push(x.prefix);
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                out.push(x.prefix);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(y.prefix);
                j += 1;
            }
        }
    }
    out.extend(a[i..].iter().map(|e| e.prefix));
    out.extend(b[j..].iter().map(|e| e.prefix));
    out
}

/// Snapshot the relaxation scratch into an owned [`PrefixState`],
/// zeroing hop data where it is stale (origins, unreached devices).
fn snapshot(net: &SimNet, relax: &Relaxation) -> PrefixState {
    let n = relax.best.len();
    let Hops::Bits { bits, spill } = &relax.hops else {
        unreachable!("the restart path always converges in bitset mode")
    };
    let mut sbits = vec![HopSet::new(); n];
    let mut sspill = HashMap::new();
    for du in 0..n {
        let b = relax.best[du];
        if b == 0 || b == INF {
            continue;
        }
        if net.fits[du] {
            sbits[du] = bits[du];
        } else {
            sspill.insert(du as u32, spill[du].clone());
        }
    }
    PrefixState {
        best: relax.best.clone(),
        parent: relax.parent.iter().map(|p| p.0).collect(),
        bits: sbits,
        spill: sspill,
        tie_free: false,
    }
}

/// Emit one device's entry for one prefix from a snapshotted state,
/// with `removed` neighbor-table bits cleared from its hop set —
/// reproducing `emit_vecs` semantics (sorted hops, cap truncation).
#[allow(clippy::too_many_arguments)]
fn push_state(
    builder: &mut FibBuilder,
    st: &PrefixState,
    du: usize,
    prefix: Prefix,
    cap: u32,
    removed: &[u16],
    net: &SimNet,
) {
    let best = st.best[du];
    if best == INF {
        return;
    }
    if best == 0 {
        builder.push(prefix, Vec::new(), true);
        return;
    }
    let mut hops: Vec<Ipv4> = match st.spill.get(&(du as u32)) {
        Some(sp) => {
            let mut h = sp.clone();
            for &bit in removed {
                let addr = net.addr_table[du][bit as usize];
                h.retain(|&x| x != addr);
            }
            h.sort_unstable();
            h
        }
        None => {
            let mut mask = st.bits[du];
            for &bit in removed {
                mask.remove(bit);
            }
            // Bit order is address order: the vector is born sorted.
            mask.iter()
                .map(|bit| net.addr_table[du][bit as usize])
                .collect()
        }
    };
    hops.truncate(cap as usize);
    builder.push(prefix, hops, false);
}

/// Do two snapshots agree on one device's emitted state?
fn state_eq_at(a: &PrefixState, b: &PrefixState, du: usize, net: &SimNet) -> bool {
    let (x, y) = (a.best[du], b.best[du]);
    if x != y {
        return false;
    }
    if x == 0 || x == INF {
        return true;
    }
    if net.fits[du] {
        a.bits[du] == b.bits[du]
    } else {
        a.spill.get(&(du as u32)) == b.spill.get(&(du as u32))
    }
}

/// The AS-path sequence device `from` advertises, via parent walk.
fn path_seq(st: &PrefixState, asn: &[Asn], mut from: u32, out: &mut Vec<Asn>) {
    out.clear();
    loop {
        out.push(asn[from as usize]);
        if st.best[from as usize] == 0 {
            return;
        }
        from = st.parent[from as usize];
    }
}

/// Is the prefix tie-break-free: does every device with multiple
/// equal-length senders see identical AS-path sequences from all of
/// them? If so, any BFS parent choice yields the same observables, and
/// a parent-edge death is patchable without re-running the BFS.
fn tie_break_free(
    st: &PrefixState,
    asn: &[Asn],
    addr_table: &[Vec<Ipv4>],
    bit_peer: &[Vec<u32>],
) -> bool {
    let mut first = Vec::new();
    let mut other = Vec::new();
    for ru in 0..st.best.len() {
        let b = st.best[ru];
        if b == 0 || b == INF {
            continue;
        }
        let senders: Vec<u32> = match st.spill.get(&(ru as u32)) {
            Some(sp) => sp
                .iter()
                .map(|addr| {
                    let bit = addr_table[ru]
                        .binary_search(addr)
                        .expect("hop address is in the neighbor table");
                    bit_peer[ru][bit]
                })
                .collect(),
            None => st.bits[ru].iter().map(|bit| bit_peer[ru][bit as usize]).collect(),
        };
        if senders.len() <= 1 {
            continue;
        }
        path_seq(st, asn, senders[0], &mut first);
        for &s in &senders[1..] {
            path_seq(st, asn, s, &mut other);
            if first != other {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use dctopo::generator::{build_clos, figure3, ClosParams};
    use dctopo::Role;

    /// A config exercising every override the simulator honors.
    fn faulted_config(f: &dctopo::generator::Figure3) -> SimConfig {
        SimConfig::healthy()
            .with_max_ecmp(f.tors[0], 2)
            .with_rib_fib_bug(f.tors[1], 1)
            .with_default_reject(f.a[0])
            .with_l2_port_bug(f.b[1])
            .with_asn_override(f.b[0], f.topology.device(f.a[0]).asn)
    }

    fn assert_scenario_exact(base: &Baseline, fault: &FaultSpec, what: &str) {
        let out = base.resimulate(fault);
        let spliced = out.splice(base.healthy_fibs());
        let mut faulted = base.topology().clone();
        fault.apply(&mut faulted);
        let scratch = simulate(&faulted, base.config());
        assert_eq!(spliced, scratch, "restart diverged from scratch: {what}");
        // `changed` must list exactly the differing devices, and
        // `touched` exactly each one's differing prefixes.
        assert_eq!(out.changed.len(), out.touched.len());
        for ((d, fib), touched) in out.changed.iter().zip(&out.touched) {
            let healthy = &base.healthy_fibs()[d.0 as usize];
            assert_ne!(
                fib, healthy,
                "unchanged device reported as changed: {what}"
            );
            assert_eq!(
                touched,
                &diff_prefixes(healthy, fib),
                "touched prefixes diverge from the real diff: {what}"
            );
        }
    }

    #[test]
    fn healthy_replay_matches_simulate() {
        let f = figure3();
        for config in [SimConfig::healthy(), faulted_config(&f)] {
            let base = Baseline::converge(&f.topology, &config);
            assert_eq!(base.healthy_fibs(), &simulate(&f.topology, &config)[..]);
        }
        let medium = build_clos(&ClosParams::default());
        let base = Baseline::converge(&medium, &SimConfig::healthy());
        assert_eq!(
            base.healthy_fibs(),
            &simulate(&medium, &SimConfig::healthy())[..]
        );
    }

    #[test]
    fn empty_fault_changes_nothing() {
        let f = figure3();
        let base = Baseline::converge(&f.topology, &SimConfig::healthy());
        let out = base.resimulate(&FaultSpec::default());
        assert!(out.changed.is_empty());
        assert_eq!(out.stats.patched + out.stats.repropagated, 0);
    }

    /// The satellite regression: every single-link failure on a seeded
    /// 3-tier Clos produces FIBs bit-identical to a from-scratch run.
    #[test]
    fn every_single_link_failure_matches_scratch_on_clos() {
        let t = build_clos(&ClosParams::default());
        let base = Baseline::converge(&t, &SimConfig::healthy());
        let mut patched = 0usize;
        let mut repropagated = 0usize;
        for l in t.links() {
            let fault = FaultSpec::links([l.id]);
            let out = base.resimulate(&fault);
            patched += out.stats.patched;
            repropagated += out.stats.repropagated;
            let spliced = out.splice(base.healthy_fibs());
            let mut faulted = t.clone();
            fault.apply(&mut faulted);
            assert_eq!(
                spliced,
                simulate(&faulted, &SimConfig::healthy()),
                "link {}",
                l.id.0
            );
        }
        // The sweep must exercise both repair paths.
        assert!(patched > 0, "no scenario used the patch fast path");
        assert!(repropagated > 0, "no scenario used the BFS fallback");
    }

    #[test]
    fn single_link_failures_match_scratch_under_faulted_config() {
        let f = figure3();
        let config = faulted_config(&f);
        let base = Baseline::converge(&f.topology, &config);
        for l in f.topology.links() {
            assert_scenario_exact(&base, &FaultSpec::links([l.id]), &format!("link {}", l.id.0));
        }
    }

    #[test]
    fn link_pairs_match_scratch() {
        let f = figure3();
        let base = Baseline::converge(&f.topology, &SimConfig::healthy());
        let links = f.topology.links();
        for i in 0..links.len() {
            for j in (i + 1)..links.len() {
                assert_scenario_exact(
                    &base,
                    &FaultSpec::links([links[i].id, links[j].id]),
                    &format!("links {} {}", links[i].id.0, links[j].id.0),
                );
            }
        }
    }

    #[test]
    fn device_failures_match_scratch() {
        let f = figure3();
        let base = Baseline::converge(&f.topology, &SimConfig::healthy());
        for d in f.topology.devices() {
            assert_scenario_exact(
                &base,
                &FaultSpec::devices([d.id]),
                &format!("device {}", d.name),
            );
        }
        // Mixed link + device scenarios.
        let spine = f.d[0];
        let link = f.topology.links_of(f.tors[2]).next().unwrap().id;
        assert_scenario_exact(
            &base,
            &FaultSpec {
                links: vec![link],
                devices: vec![spine],
            },
            "mixed spine + tor-link",
        );
    }

    #[test]
    fn device_failures_match_scratch_on_clos() {
        let t = build_clos(&ClosParams {
            clusters: 2,
            tors_per_cluster: 4,
            leaves_per_cluster: 3,
            spines: 6,
            regional_spines: 2,
            regional_groups: 1,
            prefixes_per_tor: 1,
        });
        let base = Baseline::converge(&t, &SimConfig::healthy());
        for role in [Role::Tor, Role::Leaf, Role::Spine, Role::RegionalSpine] {
            let d = t.devices_with_role(role).next().unwrap();
            assert_scenario_exact(
                &base,
                &FaultSpec::devices([d.id]),
                &format!("device {}", d.name),
            );
        }
    }

    #[test]
    fn already_down_links_are_no_ops() {
        let mut f = figure3();
        let l = f.topology.link_between(f.tors[0], f.a[0]).unwrap().id;
        f.topology.set_link_state(l, LinkState::OperDown);
        let base = Baseline::converge(&f.topology, &SimConfig::healthy());
        let out = base.resimulate(&FaultSpec::links([l]));
        assert!(out.changed.is_empty(), "re-failing a down link is a no-op");
    }
}
