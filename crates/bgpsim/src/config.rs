//! Simulation configuration and fault/bug injection.
//!
//! Each field of [`DeviceOverride`] reproduces one root cause from the
//! paper's §2.6.2 error taxonomy; link-level faults (hardware failures,
//! administrative shutdowns) are injected on the topology itself via
//! [`dctopo::LinkState`].

use dctopo::{Asn, DeviceId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-device configuration deviations from the healthy baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceOverride {
    /// §2.6.2 *Software Bug 1*: a RIB→FIB inconsistency where the FIB
    /// programs "significantly fewer next hops for the default route
    /// compared to expected". `Some(k)` keeps only the first `k` next
    /// hops of the default route in the FIB (the RIB is unaffected).
    pub rib_fib_default_hops: Option<usize>,

    /// §2.6.2 *Software Bug 2*: interfaces treated as layer-2 switch
    /// ports — no IP addresses, so "BGP sessions could not be set up on
    /// any of the interfaces". All sessions of this device are down.
    pub l2_port_bug: bool,

    /// §2.6.2 *Policy Errors* (route maps): the device rejects default
    /// route announcements from upstream devices.
    pub reject_default_import: bool,

    /// §2.6.2 *Policy Errors* (ECMP misconfiguration): the device
    /// programs at most this many next hops per route instead of the
    /// full ECMP set. `Some(1)` reproduces the paper's "single next hop
    /// for upstream traffic" case.
    pub max_ecmp: Option<usize>,

    /// §2.6.2 *Migrations*: the device is configured with the wrong
    /// ASN (e.g. new-infrastructure leaves reusing the decommissioned
    /// infrastructure's ASN), causing loop-prevention to silently drop
    /// announcements.
    pub asn_override: Option<Asn>,
}

impl DeviceOverride {
    /// Is this the all-defaults (healthy) override?
    pub fn is_noop(&self) -> bool {
        *self == DeviceOverride::default()
    }
}

/// Configuration for one simulation run: a sparse map of per-device
/// overrides. An empty config is the healthy datacenter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimConfig {
    overrides: HashMap<DeviceId, DeviceOverride>,
}

impl SimConfig {
    /// The healthy baseline configuration.
    pub fn healthy() -> Self {
        SimConfig::default()
    }

    /// Mutable access to the override for a device, creating a default
    /// entry on first touch.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut DeviceOverride {
        self.overrides.entry(id).or_default()
    }

    /// The override for a device, if any.
    pub fn device(&self, id: DeviceId) -> Option<&DeviceOverride> {
        self.overrides.get(&id)
    }

    /// Devices with non-default overrides.
    pub fn overridden(&self) -> impl Iterator<Item = (DeviceId, &DeviceOverride)> {
        self.overrides
            .iter()
            .filter(|(_, o)| !o.is_noop())
            .map(|(&d, o)| (d, o))
    }

    /// Convenience: inject Software Bug 1 on a device.
    pub fn with_rib_fib_bug(mut self, id: DeviceId, hops: usize) -> Self {
        self.device_mut(id).rib_fib_default_hops = Some(hops);
        self
    }

    /// Convenience: inject Software Bug 2 on a device.
    pub fn with_l2_port_bug(mut self, id: DeviceId) -> Self {
        self.device_mut(id).l2_port_bug = true;
        self
    }

    /// Convenience: inject a default-route-rejecting route map.
    pub fn with_default_reject(mut self, id: DeviceId) -> Self {
        self.device_mut(id).reject_default_import = true;
        self
    }

    /// Convenience: inject an ECMP misconfiguration.
    pub fn with_max_ecmp(mut self, id: DeviceId, k: usize) -> Self {
        self.device_mut(id).max_ecmp = Some(k);
        self
    }

    /// Convenience: inject a migration ASN collision.
    pub fn with_asn_override(mut self, id: DeviceId, asn: Asn) -> Self {
        self.device_mut(id).asn_override = Some(asn);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_config_has_no_overrides() {
        let c = SimConfig::healthy();
        assert_eq!(c.overridden().count(), 0);
        assert!(c.device(DeviceId(3)).is_none());
    }

    #[test]
    fn builders_accumulate() {
        let c = SimConfig::healthy()
            .with_l2_port_bug(DeviceId(1))
            .with_max_ecmp(DeviceId(1), 1)
            .with_default_reject(DeviceId(2));
        assert_eq!(c.overridden().count(), 2);
        let o1 = c.device(DeviceId(1)).unwrap();
        assert!(o1.l2_port_bug);
        assert_eq!(o1.max_ecmp, Some(1));
        assert!(!o1.reject_default_import);
    }

    #[test]
    fn default_override_is_noop() {
        assert!(DeviceOverride::default().is_noop());
        let o = DeviceOverride {
            asn_override: Some(Asn(65533)),
            ..DeviceOverride::default()
        };
        assert!(!o.is_noop());
    }
}
