//! The per-prefix EBGP convergence engine.
//!
//! With no route aggregation, BGP converges per prefix independently.
//! For each prefix (the ToR-hosted specifics plus the regional-spine
//! default), the engine runs a monotone shortest-AS-path relaxation:
//!
//! * origins start at distance 0;
//! * a device at distance `L` advertises to every session-up neighbor,
//!   which accepts at distance `L+1` unless BGP loop prevention (own
//!   ASN in the advertised path, modulo ToR allowas-in) or an import
//!   policy rejects it;
//! * all neighbors delivering the minimal distance form the ECMP
//!   next-hop set.
//!
//! The advertised AS path of a device is reconstructed by walking BFS
//! parents (paths are at most 4 ASNs deep in a Clos), avoiding per-hop
//! path allocation across the ~10⁸ relaxations of a 10⁴-router run.

use crate::config::SimConfig;
use crate::fib::{Fib, FibBuilder};
use dctopo::{Asn, DeviceId, Role, Topology};
use netprim::{HopSet, Ipv4, Prefix};

/// The default route prefix originated by the regional spines.
pub fn default_prefix() -> Prefix {
    Prefix::DEFAULT
}

pub(crate) const INF: u8 = u8::MAX;
/// Upper bound on AS-path length in a 4-tier Clos (loop prevention
/// caps real paths at 4; 16 leaves margin for override experiments).
const MAX_LEN: usize = 16;


/// Tuning knobs for [`simulate_with`].
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Worker threads for the prefix-parallel fixed-point. Prefixes
    /// converge independently (no aggregation), so the work list is
    /// chunked across workers; `1` runs the serial loop. The result is
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Force the legacy `Vec<Ipv4>` hop accumulation instead of the
    /// [`HopSet`] bitset path. This is also the automatic fallback
    /// when a device's neighbor table exceeds [`HopSet::CAPACITY`];
    /// it stays public as the pre-change baseline for the E17 bench
    /// and the equivalence tests.
    pub legacy_hops: bool,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            threads: 1,
            legacy_hops: false,
        }
    }
}

impl SimOptions {
    /// Options with `threads` defaulted to the detected core count —
    /// the service-path default, where the fixed point competes with
    /// nothing else. `RCDC_SIM_THREADS` overrides the detection
    /// (including back down to `1`); the output is bit-identical at
    /// any thread count, so the override is purely a resource knob.
    pub fn auto() -> SimOptions {
        Self::auto_from(|k| std::env::var(k).ok())
    }

    /// [`auto`](Self::auto) over an injectable environment lookup, so
    /// tests exercise the parsing without touching process globals.
    /// A set-but-invalid `RCDC_SIM_THREADS` falls back to detection —
    /// simulation must not fail over a tuning knob.
    pub fn auto_from(get: impl Fn(&str) -> Option<String>) -> SimOptions {
        let detected = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threads = get("RCDC_SIM_THREADS")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(detected);
        SimOptions {
            threads,
            ..SimOptions::default()
        }
    }
}

/// Deterministic work counters for one simulation run: identical for
/// any [`SimOptions`] (threading and hop representation change neither
/// the relaxation schedule per prefix nor its fixed point).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Prefixes converged (hosted prefixes + the default route).
    pub prefixes: usize,
    /// BFS levels processed across all prefixes (per-prefix iteration
    /// counts, summed).
    pub rounds: u64,
    /// Session relaxations attempted across all prefixes.
    pub relaxations: u64,
}

impl SimStats {
    fn absorb(&mut self, other: &SimStats) {
        self.prefixes += other.prefixes;
        self.rounds += other.rounds;
        self.relaxations += other.relaxations;
    }
}

/// Per-prefix hop accumulation: the legacy unordered `Vec` per device,
/// or a [`HopSet`] bit mask over the device's sorted neighbor table.
/// The bitset makes the ECMP-extend step a branch-free bit set instead
/// of a linear `contains` scan, and materializes born-sorted vectors
/// at emit (no per-entry sort + dedup in the FIB interner).
pub(crate) enum Hops {
    Vecs(Vec<Vec<Ipv4>>),
    Bits {
        /// Per-device hop bitset over its neighbor-address table.
        bits: Vec<HopSet>,
        /// Vec fallback for devices whose neighbor table exceeds
        /// [`HopSet::CAPACITY`] (large spines in the 10⁴-router
        /// shapes). Selected per *receiver* via `SimNet::fits`, so one
        /// fat device never forces the whole fabric off the fast path.
        spill: Vec<Vec<Ipv4>>,
    },
}

/// Scratch state reused across prefixes.
pub(crate) struct Relaxation {
    pub(crate) best: Vec<u8>,
    pub(crate) parent: Vec<DeviceId>,
    /// 64-bit Bloom signature of the ASNs on each device's advertised
    /// path (`bit(asn) | signature(parent)`). A clear receiver bit
    /// proves the ASN is absent, letting the acceptance fast path skip
    /// the parent-chain walk; a set bit falls back to the exact walk,
    /// so loop-prevention verdicts are unchanged. No per-prefix reset
    /// is needed: the signature is only read for senders, and a sender
    /// was always (re)written during the current prefix's relaxation.
    path_asns: Vec<u64>,
    pub(crate) hops: Hops,
    touched: Vec<DeviceId>,
    buckets: Vec<Vec<DeviceId>>,
}

/// The bit `asn` occupies in a path signature.
#[inline]
fn asn_bit(a: Asn) -> u64 {
    1u64 << (a.0 & 63)
}

impl Relaxation {
    pub(crate) fn new(n: usize, bitset: bool) -> Self {
        Relaxation {
            best: vec![INF; n],
            parent: vec![DeviceId(0); n],
            path_asns: vec![0; n],
            hops: if bitset {
                Hops::Bits {
                    bits: vec![HopSet::new(); n],
                    spill: vec![Vec::new(); n],
                }
            } else {
                Hops::Vecs(vec![Vec::new(); n])
            },
            touched: Vec::new(),
            buckets: vec![Vec::new(); MAX_LEN],
        }
    }

    pub(crate) fn reset(&mut self) {
        // Only `best` needs restoring: hop sets are written before they
        // are read. A non-origin device enters a prefix with
        // `best == INF`, so its first relaxation takes the improvement
        // branch, which clears the hop set itself — and emit never
        // reads hops for origins (`len == 0`) or unreached devices.
        for &d in &self.touched {
            self.best[d.0 as usize] = INF;
        }
        self.touched.clear();
        for b in &mut self.buckets {
            b.clear();
        }
    }
}

/// A device's forwarding state for one prefix, encoded as a run code:
/// absent (no route), a local/origin entry, or an interned hop-set id.
/// Set ids stay below the flag bits.
const RUN_ABSENT: u32 = u32::MAX;
const RUN_LOCAL: u32 = 1 << 31;

/// Run-length-encoded emit state. A device's FIB over the chunk's
/// prefix sequence is long stretches of one state (a ToR forwards every
/// remote /24 over the same leaf ECMP set), so the bitset emit path
/// records only state *changes* — a handful of runs per device — and
/// expands them into entries per device afterwards. The per-(prefix,
/// device) work drops to a sequential mask compare, and the entry
/// writes become per-device streaming appends instead of 10⁴ scattered
/// pushes per prefix. Expansion replays the exact per-prefix push
/// sequence, interned pool layout included, because a set id is
/// interned at its run's start — the same first-use moment at which
/// per-prefix pushes would have interned it.
pub(crate) struct EmitRle {
    /// Per device: (chunk-local prefix index where the run starts, run
    /// code). A run ends where the next begins, or at the chunk's end.
    /// Devices implicitly start in an absent run at index 0.
    runs: Vec<Vec<(u32, u32)>>,
    /// Per device: the current (latest) run's code.
    last_code: Vec<u32>,
    /// Per device: the current run's hop mask, valid when `last_code`
    /// is a set id (post-truncation, so cap changes break runs).
    mask: Vec<HopSet>,
}

impl EmitRle {
    pub(crate) fn new(n: usize) -> EmitRle {
        EmitRle {
            runs: vec![Vec::new(); n],
            last_code: vec![RUN_ABSENT; n],
            mask: vec![HopSet::new(); n],
        }
    }
}

/// Precomputed, immutable per-run state shared by every worker.
pub(crate) struct SimNet {
    pub(crate) asn: Vec<Asn>,
    allowas_in: Vec<bool>,
    /// Session adjacency in CSR form: device `d`'s sessions are
    /// `sess[sess_off[d]..sess_off[d + 1]]`, each `(peer, peer_bit)` —
    /// the receiving device and the rank of this device's interface
    /// address in the receiver's sorted neighbor table. The next-hop
    /// address the receiver programs is `addr_table[peer][peer_bit]`,
    /// so 8 bytes carry the whole relaxation: the propagate loop scans
    /// ~10⁵ sessions per prefix and is bound by this stream's width.
    sess_off: Vec<u32>,
    sess: Vec<(u32, u32)>,
    /// Per device: its neighbors' interface addresses, ascending — the
    /// bit↔address mapping of the bitset hop mode.
    pub(crate) addr_table: Vec<Vec<Ipv4>>,
    /// Per device: its neighbor table fits a [`HopSet`] (bitset hop
    /// mode); devices over capacity use the Vec spill path instead.
    pub(crate) fits: Vec<bool>,
    /// Per device: ECMP width cap for specific routes (`u32::MAX` when
    /// unbounded). Emit runs once per (device, prefix) pair, so the
    /// config override lookup is hoisted out of that loop.
    pub(crate) ecmp_cap: Vec<u32>,
    /// Per device: ECMP width cap for the default route — the specific
    /// cap further limited by the RIB→FIB default-hop truncation bug.
    pub(crate) default_cap: Vec<u32>,
    /// Per device: the default-route import rejection override.
    reject_default: Vec<bool>,
}

impl SimNet {
    pub(crate) fn build(topology: &Topology, config: &SimConfig) -> SimNet {
        SimNet::build_filtered(topology, config, &std::collections::HashSet::new())
    }

    /// [`SimNet::build`] with an extra set of links excluded from the
    /// session graph — the fault-injection surface of the restart API.
    /// Only sessions are filtered: the neighbor-address table (and with
    /// it the bit↔address mapping) still covers every physical link, so
    /// hop masks computed against the healthy table stay valid.
    pub(crate) fn build_filtered(
        topology: &Topology,
        config: &SimConfig,
        dead: &std::collections::HashSet<dctopo::LinkId>,
    ) -> SimNet {
        let n = topology.len();
        // Effective ASNs (migration overrides applied).
        let asn: Vec<Asn> = topology
            .devices()
            .iter()
            .map(|d| {
                config
                    .device(d.id)
                    .and_then(|o| o.asn_override)
                    .unwrap_or(d.asn)
            })
            .collect();
        let l2_bug: Vec<bool> = topology
            .devices()
            .iter()
            .map(|d| config.device(d.id).is_some_and(|o| o.l2_port_bug))
            .collect();
        // The neighbor-address table covers every physical link
        // regardless of session state, so the bit↔address mapping is
        // stable across fault configurations (link /31 addresses are
        // globally unique, hence sorted-unique per device).
        let mut addr_table: Vec<Vec<Ipv4>> = (0..n).map(|_| Vec::new()).collect();
        for l in topology.links() {
            addr_table[l.lo.0 as usize].push(l.hi_addr);
            addr_table[l.hi.0 as usize].push(l.lo_addr);
        }
        for t in &mut addr_table {
            t.sort_unstable();
        }
        let fits: Vec<bool> = addr_table
            .iter()
            .map(|t| t.len() <= HopSet::CAPACITY)
            .collect();
        // Session adjacency over healthy links between non-L2-bugged
        // devices, flattened to CSR (per-device order is link order,
        // which fixes ECMP insertion order and BFS tie-breaks).
        let mut per_dev: Vec<Vec<(u32, u32)>> = (0..n).map(|_| Vec::new()).collect();
        for l in topology.links() {
            if !l.state.session_up() || dead.contains(&l.id) {
                continue;
            }
            if l2_bug[l.lo.0 as usize] || l2_bug[l.hi.0 as usize] {
                continue;
            }
            let bit = |peer: DeviceId, addr: Ipv4| {
                addr_table[peer.0 as usize]
                    .binary_search(&addr)
                    .expect("session address is in the peer's table") as u32
            };
            per_dev[l.lo.0 as usize].push((l.hi.0, bit(l.hi, l.lo_addr)));
            per_dev[l.hi.0 as usize].push((l.lo.0, bit(l.lo, l.hi_addr)));
        }
        let mut sess_off = Vec::with_capacity(n + 1);
        let mut sess = Vec::with_capacity(per_dev.iter().map(Vec::len).sum());
        sess_off.push(0);
        for d in &per_dev {
            sess.extend_from_slice(d);
            sess_off.push(sess.len() as u32);
        }
        let allowas_in: Vec<bool> = topology
            .devices()
            .iter()
            .map(|d| d.role == Role::Tor)
            .collect();
        // Truncation caps and import overrides, hoisted out of the
        // per-(device, prefix) emit/relax loops. `m.max(1)` mirrors the
        // historical closure: a cap of zero still forwards one hop.
        let cap = |m: Option<usize>| -> u32 {
            m.map_or(u32::MAX, |m| m.max(1).min(u32::MAX as usize) as u32)
        };
        let mut ecmp_cap = vec![u32::MAX; n];
        let mut default_cap = vec![u32::MAX; n];
        let mut reject_default = vec![false; n];
        for d in topology.devices() {
            if let Some(o) = config.device(d.id) {
                let du = d.id.0 as usize;
                ecmp_cap[du] = cap(o.max_ecmp);
                default_cap[du] = ecmp_cap[du].min(cap(o.rib_fib_default_hops));
                reject_default[du] = o.reject_default_import;
            }
        }
        SimNet {
            asn,
            allowas_in,
            sess_off,
            sess,
            addr_table,
            fits,
            ecmp_cap,
            default_cap,
            reject_default,
        }
    }
}

/// Simulate EBGP convergence and return one FIB per device (indexed by
/// device id).
pub fn simulate(topology: &Topology, config: &SimConfig) -> Vec<Fib> {
    simulate_with(topology, config, SimOptions::default()).0
}

/// [`simulate`] with explicit threading / hop-representation options,
/// also returning the run's deterministic work counters.
pub fn simulate_with(
    topology: &Topology,
    config: &SimConfig,
    opts: SimOptions,
) -> (Vec<Fib>, SimStats) {
    let n = topology.len();
    let net = SimNet::build(topology, config);
    let bitset = !opts.legacy_hops;
    let work = work_list(topology);

    let fresh_builders = || -> Vec<FibBuilder> {
        topology
            .devices()
            .iter()
            .map(|d| FibBuilder::new(d.id))
            .collect()
    };

    let run_chunk = |chunk: &[(Prefix, Vec<DeviceId>)]| -> (Vec<FibBuilder>, SimStats) {
        let mut builders = fresh_builders();
        let mut relax = Relaxation::new(n, bitset);
        let mut rle = EmitRle::new(n);
        let mut stats = SimStats {
            prefixes: chunk.len(),
            ..SimStats::default()
        };
        for (k, (prefix, origins)) in chunk.iter().enumerate() {
            relax.reset();
            propagate(&net, &mut relax, *prefix, origins, &mut stats);
            if bitset {
                emit_runs(&net, &relax, k as u32, *prefix, &mut rle, &mut builders);
            } else {
                emit_vecs(&net, &relax, *prefix, &mut builders);
            }
        }
        if bitset {
            let prefixes: Vec<Prefix> = chunk.iter().map(|(p, _)| *p).collect();
            expand_runs(&rle, &prefixes, &mut builders);
        }
        (builders, stats)
    };

    let threads = opts.threads.max(1).min(work.len().max(1));
    let (builders, stats) = if threads <= 1 {
        run_chunk(&work)
    } else {
        // Chunk the prefix list across scoped workers — the same
        // static-partition idiom as the validation runner. Each worker
        // converges its prefixes into private per-device partial
        // builders; absorbing the workers in chunk order replays the
        // exact serial push sequence, so the merged tables (interned
        // pool layout included) are bit-identical to a 1-thread run.
        let chunk_size = work.len().div_ceil(threads);
        let results: Vec<(Vec<FibBuilder>, SimStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(|| run_chunk(chunk)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut results = results.into_iter();
        let (mut builders, mut stats) = results.next().expect("at least one chunk");
        for (worker_builders, worker_stats) in results {
            for (dst, src) in builders.iter_mut().zip(&worker_builders) {
                dst.absorb(src);
            }
            stats.absorb(&worker_stats);
        }
        (builders, stats)
    };

    (
        builders.into_iter().map(FibBuilder::finish).collect(),
        stats,
    )
}

/// The canonical simulation work list: every hosted prefix (origin: its
/// ToR) and the default route (origins: all regional spines), in the
/// order every convergence path — serial, parallel, and restart —
/// processes them. Push order over this list fixes the FIB layout, so
/// replaying it reproduces tables bit-for-bit.
pub(crate) fn work_list(topology: &Topology) -> Vec<(Prefix, Vec<DeviceId>)> {
    let mut work: Vec<(Prefix, Vec<DeviceId>)> = topology
        .all_hosted()
        .map(|(tor, prefix)| (prefix, vec![tor]))
        .collect();
    let regionals: Vec<DeviceId> = topology
        .devices_with_role(Role::RegionalSpine)
        .map(|d| d.id)
        .collect();
    work.push((default_prefix(), regionals));
    work
}

/// Does the AS path advertised by `from` (walked via BFS parents)
/// contain `receiver_asn`? The advertised path is
/// `asn(from), asn(parent(from)), …, asn(origin)`.
fn path_contains(
    relax: &Relaxation,
    asn: &[Asn],
    mut from: DeviceId,
    receiver_asn: Asn,
) -> bool {
    loop {
        if asn[from.0 as usize] == receiver_asn {
            return true;
        }
        let len = relax.best[from.0 as usize];
        if len == 0 {
            return false; // reached an origin
        }
        from = relax.parent[from.0 as usize];
    }
}

pub(crate) fn propagate(
    net: &SimNet,
    relax: &mut Relaxation,
    prefix: Prefix,
    origins: &[DeviceId],
    stats: &mut SimStats,
) {
    let is_default = prefix.is_default();
    for &o in origins {
        // An origin with the L2 bug still "hosts" the prefix but cannot
        // announce it (no sessions) — handled naturally since its
        // session list is empty.
        relax.best[o.0 as usize] = 0;
        relax.path_asns[o.0 as usize] = asn_bit(net.asn[o.0 as usize]);
        relax.touched.push(o);
        relax.buckets[0].push(o);
    }

    for level in 0..MAX_LEN - 1 {
        if relax.buckets[level].is_empty() {
            continue;
        }
        stats.rounds += 1;
        let senders = std::mem::take(&mut relax.buckets[level]);
        for d in senders {
            let du = d.0 as usize;
            if relax.best[du] != level as u8 {
                continue; // stale entry; improved earlier
            }
            let sess = &net.sess[net.sess_off[du] as usize..net.sess_off[du + 1] as usize];
            for &(peer, bit) in sess {
                stats.relaxations += 1;
                let nu = peer as usize;
                let nl = level as u8 + 1;
                let cur = relax.best[nu];
                if nl > cur {
                    continue;
                }
                // Import policy: default-route rejection (§2.6.2).
                if is_default && net.reject_default[nu] {
                    continue;
                }
                // BGP loop prevention on the receiver, unless
                // allowas-in. The Bloom signature proves most accepted
                // paths clean without walking the parent chain.
                if !net.allowas_in[nu]
                    && relax.path_asns[du] & asn_bit(net.asn[nu]) != 0
                    && path_contains(relax, &net.asn, d, net.asn[nu])
                {
                    continue;
                }
                // Self-announcement guard: an origin never reimports.
                if relax.best[nu] == 0 {
                    continue;
                }
                if nl < cur {
                    if cur == INF {
                        relax.touched.push(DeviceId(peer));
                    }
                    relax.best[nu] = nl;
                    relax.parent[nu] = d;
                    relax.path_asns[nu] = relax.path_asns[du] | asn_bit(net.asn[nu]);
                    match &mut relax.hops {
                        Hops::Vecs(v) => {
                            v[nu].clear();
                            v[nu].push(net.addr_table[nu][bit as usize]);
                        }
                        Hops::Bits { bits, spill } => {
                            if net.fits[nu] {
                                bits[nu].clear();
                                bits[nu].insert(bit as u16);
                            } else {
                                spill[nu].clear();
                                spill[nu].push(net.addr_table[nu][bit as usize]);
                            }
                        }
                    }
                    relax.buckets[nl as usize].push(DeviceId(peer));
                } else {
                    // Equal length: extend the ECMP set. The bitset
                    // insert is idempotent — the branch-free form of
                    // the legacy `contains` scan.
                    match &mut relax.hops {
                        Hops::Vecs(v) => {
                            let hops = &mut v[nu];
                            let addr = net.addr_table[nu][bit as usize];
                            if !hops.contains(&addr) {
                                hops.push(addr);
                            }
                        }
                        Hops::Bits { bits, spill } => {
                            if net.fits[nu] {
                                bits[nu].insert(bit as u16);
                            } else {
                                let hops = &mut spill[nu];
                                let addr = net.addr_table[nu][bit as usize];
                                if !hops.contains(&addr) {
                                    hops.push(addr);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Per-prefix emit for legacy `Hops::Vecs` mode: one push per reached
/// device, exactly as the frozen reference simulator does it.
fn emit_vecs(net: &SimNet, relax: &Relaxation, prefix: Prefix, builders: &mut [FibBuilder]) {
    let caps = if prefix.is_default() {
        &net.default_cap
    } else {
        &net.ecmp_cap
    };
    let Hops::Vecs(v) = &relax.hops else {
        unreachable!("emit_vecs requires Vec hop mode")
    };
    for du in 0..relax.best.len() {
        let len = relax.best[du];
        if len == INF {
            continue;
        }
        if len == 0 {
            // Origin: ToRs install their hosted prefix as local.
            // Regional spines originate the default (modeled as local
            // too: it points out of the datacenter).
            builders[du].push(prefix, Vec::new(), true);
            continue;
        }
        let mut hops = v[du].clone();
        hops.sort_unstable();
        hops.truncate(caps[du] as usize);
        builders[du].push(prefix, hops, false);
    }
}

/// Per-prefix emit for bitset mode: extend or break each device's
/// current run (see [`EmitRle`]). `k` is the chunk-local prefix index.
///
/// Devices are scanned in id order rather than BFS-touch order: the
/// reached set is nearly every device, and ascending ids make every
/// array access here a sequential stream. Each device still yields
/// exactly one state per prefix, so the expanded push sequence — and
/// therefore the finished table — is unchanged.
pub(crate) fn emit_runs(
    net: &SimNet,
    relax: &Relaxation,
    k: u32,
    prefix: Prefix,
    rle: &mut EmitRle,
    builders: &mut [FibBuilder],
) {
    let caps = if prefix.is_default() {
        &net.default_cap
    } else {
        &net.ecmp_cap
    };
    let Hops::Bits { bits, spill } = &relax.hops else {
        unreachable!("emit_runs requires bitset hop mode")
    };
    for du in 0..relax.best.len() {
        let len = relax.best[du];
        if len == INF {
            if rle.last_code[du] != RUN_ABSENT {
                rle.runs[du].push((k, RUN_ABSENT));
                rle.last_code[du] = RUN_ABSENT;
            }
            continue;
        }
        if len == 0 {
            // Origin: ToRs install their hosted prefix as local.
            // Regional spines originate the default (modeled as local
            // too: it points out of the datacenter). Local entries all
            // share the empty hop set, so any local run continues.
            if rle.last_code[du] != RUN_ABSENT && rle.last_code[du] & RUN_LOCAL != 0 {
                continue;
            }
            let id = builders[du].intern(Vec::new());
            let code = RUN_LOCAL | id;
            rle.runs[du].push((k, code));
            rle.last_code[du] = code;
            continue;
        }
        let cap = caps[du];
        if !net.fits[du] {
            // Over-capacity device: the spill Vec holds its hops,
            // interned like legacy Vec mode every prefix. The interner
            // canonicalizes, so an id repeat is a state repeat.
            let mut hops = spill[du].clone();
            hops.sort_unstable();
            hops.truncate(cap as usize);
            let id = builders[du].intern(hops);
            if rle.last_code[du] != id {
                rle.runs[du].push((k, id));
                rle.last_code[du] = id;
            }
            continue;
        }
        // Bit order is address order, so truncating to the k lowest
        // bits keeps the k smallest addresses — exactly the legacy
        // sort + truncate. Uncapped devices (the overwhelming
        // majority) skip the popcount and the 64-byte copy entirely.
        let stored;
        let mask: &HopSet = if cap != u32::MAX && cap < bits[du].len() {
            stored = {
                let mut c = bits[du];
                c.truncate(cap);
                c
            };
            &stored
        } else {
            &bits[du]
        };
        // Run continues only while the device stays in a plain-set
        // state with an identical post-truncation mask; `mask[du]` is
        // stale after a local/absent interlude, and `last_code`'s flag
        // bits reject exactly those cases.
        if rle.last_code[du] < RUN_LOCAL && rle.mask[du] == *mask {
            continue;
        }
        let id = builders[du].intern_bits(mask, &net.addr_table[du]);
        rle.mask[du] = *mask;
        rle.runs[du].push((k, id));
        rle.last_code[du] = id;
    }
}

/// Expand every device's runs into its builder, in prefix order —
/// replaying exactly the per-prefix push sequence the runs encode.
pub(crate) fn expand_runs(rle: &EmitRle, prefixes: &[Prefix], builders: &mut [FibBuilder]) {
    for (du, runs) in rle.runs.iter().enumerate() {
        let span = |ri: usize, k0: u32| -> std::ops::Range<usize> {
            let k1 = runs
                .get(ri + 1)
                .map_or(prefixes.len(), |&(k, _)| k as usize);
            k0 as usize..k1
        };
        // One exact reservation per device: growth reallocations over
        // 10⁴ builders × 10⁴ entries otherwise dominate the expansion.
        let total: usize = runs
            .iter()
            .enumerate()
            .filter(|&(_, &(_, code))| code != RUN_ABSENT)
            .map(|(ri, &(k0, _))| span(ri, k0).len())
            .sum();
        builders[du].reserve(total);
        for (ri, &(k0, code)) in runs.iter().enumerate() {
            if code == RUN_ABSENT {
                continue;
            }
            let local = code & RUN_LOCAL != 0;
            let id = code & !RUN_LOCAL;
            builders[du].extend_run(&prefixes[span(ri, k0)], id, local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo::generator::{build_clos, figure3, ClosParams};
    use dctopo::{LinkState, MetadataService};

    /// Healthy Figure 3 datacenter, simulated.
    fn healthy_fig3() -> (dctopo::generator::Figure3, Vec<Fib>) {
        let f = figure3();
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        (f, fibs)
    }

    #[test]
    fn tor_has_default_via_all_leaves() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let fib = &fibs[f.tors[0].0 as usize];
        let d = fib.default_entry().expect("ToR must have a default route");
        let hops = fib.next_hops(d);
        assert_eq!(hops.len(), 4, "default must fan out over all 4 leaves");
        for h in hops {
            let owner = m.owner_of(*h).unwrap();
            assert_eq!(f.topology.device(owner).role, Role::Leaf);
            assert_eq!(
                f.topology.device(owner).cluster,
                f.topology.device(f.tors[0]).cluster
            );
        }
    }

    #[test]
    fn tor_has_specific_for_every_remote_prefix() {
        let (f, fibs) = healthy_fig3();
        let fib = &fibs[f.tors[0].0 as usize];
        // Own prefix is local; the other three are via the 4 leaves.
        let own = fib.entry_for(f.prefixes[0]).unwrap();
        assert!(own.local);
        for &p in &f.prefixes[1..] {
            let e = fib.entry_for(p).unwrap();
            assert!(!e.local);
            assert_eq!(fib.next_hops(e).len(), 4, "prefix {p}");
        }
        // Total: default + 4 prefixes.
        assert_eq!(fib.len(), 5);
    }

    #[test]
    fn leaf_forwards_cluster_prefixes_to_tors_directly() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        // A1: Prefix_A -> ToR1, Prefix_B -> ToR2 (paper Figure 4).
        let fib = &fibs[f.a[0].0 as usize];
        for (pi, tor) in [(0usize, f.tors[0]), (1, f.tors[1])] {
            let e = fib.entry_for(f.prefixes[pi]).unwrap();
            let hops = fib.next_hops(e);
            assert_eq!(hops.len(), 1);
            assert_eq!(m.owner_of(hops[0]), Some(tor));
        }
        // Prefix_C, Prefix_D -> D1 (the only spine of A1).
        for pi in [2usize, 3] {
            let e = fib.entry_for(f.prefixes[pi]).unwrap();
            let hops = fib.next_hops(e);
            assert_eq!(hops.len(), 1);
            assert_eq!(m.owner_of(hops[0]), Some(f.d[0]));
        }
        // Default -> D1.
        let de = fib.default_entry().unwrap();
        assert_eq!(m.owner_of(fib.next_hops(de)[0]), Some(f.d[0]));
        assert_eq!(fib.next_hops(de).len(), 1);
    }

    #[test]
    fn spine_routes_match_figure4() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let fib = &fibs[f.d[0].0 as usize];
        // D1: Prefix_A, Prefix_B -> A1; Prefix_C, Prefix_D -> B1.
        for (pi, leaf) in [(0usize, f.a[0]), (1, f.a[0]), (2, f.b[0]), (3, f.b[0])] {
            let e = fib.entry_for(f.prefixes[pi]).unwrap();
            let hops = fib.next_hops(e);
            assert_eq!(hops.len(), 1, "prefix index {pi}");
            assert_eq!(m.owner_of(hops[0]), Some(leaf));
        }
        // Default -> R1, R3.
        let de = fib.default_entry().unwrap();
        let owners: Vec<_> = fib
            .next_hops(de)
            .iter()
            .map(|&h| m.owner_of(h).unwrap())
            .collect();
        assert_eq!(owners.len(), 2);
        assert!(owners.contains(&f.r[0]) && owners.contains(&f.r[2]));
    }

    #[test]
    fn regional_spine_sees_every_prefix_but_no_valley() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let fib = &fibs[f.r[0].0 as usize];
        // R1 connects to D1 and D3; every prefix reachable via exactly
        // the spines that have it (1 per prefix here: plane wiring).
        for &p in &f.prefixes {
            let e = fib.entry_for(p).unwrap();
            for h in fib.next_hops(e) {
                let o = m.owner_of(*h).unwrap();
                assert_eq!(f.topology.device(o).role, Role::Spine);
            }
        }
        // The default is locally originated at regionals.
        assert!(fib.default_entry().unwrap().local);
        // No spine ever has a route through a regional back down:
        // D1 must not know Prefix_C via R1/R3 (valley-free).
        let d1 = &fibs[f.d[0].0 as usize];
        let e = d1.entry_for(f.prefixes[2]).unwrap();
        for h in d1.next_hops(e) {
            let o = m.owner_of(*h).unwrap();
            assert_eq!(f.topology.device(o).role, Role::Leaf);
        }
    }

    #[test]
    fn intra_cluster_path_is_two_hops() {
        // Forward a packet ToR1 -> Prefix_B by walking FIBs; the path
        // must be ToR1 -> leaf -> ToR2 (length 2, §2.1).
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let dst = f.prefixes[1].addr();
        let mut cur = f.tors[0];
        let mut hops = 0;
        loop {
            let fib = &fibs[cur.0 as usize];
            let e = fib.lookup(dst).expect("route must exist");
            if e.local {
                break;
            }
            cur = m.owner_of(fib.next_hops(e)[0]).unwrap();
            hops += 1;
            assert!(hops <= 8, "forwarding loop");
        }
        assert_eq!(cur, f.tors[1]);
        assert_eq!(hops, 2);
    }

    #[test]
    fn inter_cluster_path_is_four_hops() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let dst = f.prefixes[2].addr(); // Prefix_C in cluster B
        let mut cur = f.tors[0];
        let mut path = vec![cur];
        loop {
            let fib = &fibs[cur.0 as usize];
            let e = fib.lookup(dst).unwrap();
            if e.local {
                break;
            }
            cur = m.owner_of(fib.next_hops(e)[0]).unwrap();
            path.push(cur);
            assert!(path.len() <= 8, "forwarding loop: {path:?}");
        }
        assert_eq!(path.len(), 5, "ToR,leaf,spine,leaf,ToR: {path:?}");
        assert_eq!(*path.last().unwrap(), f.tors[2]);
        let roles: Vec<Role> = path
            .iter()
            .map(|&d| f.topology.device(d).role)
            .collect();
        assert_eq!(
            roles,
            vec![Role::Tor, Role::Leaf, Role::Spine, Role::Leaf, Role::Tor]
        );
    }

    #[test]
    fn link_failure_shrinks_ecmp_sets() {
        let mut f = figure3();
        // Fail ToR1-A3 and ToR1-A4 (two of the paper's four failures).
        for &leaf in &[f.a[2], f.a[3]] {
            let l = f.topology.link_between(f.tors[0], leaf).unwrap().id;
            f.topology.set_link_state(l, LinkState::OperDown);
        }
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        let fib = &fibs[f.tors[0].0 as usize];
        let d = fib.default_entry().unwrap();
        assert_eq!(fib.next_hops(d).len(), 2, "two of four uplinks remain");
    }

    #[test]
    fn figure3_failures_blackhole_specifics_but_keep_default_path() {
        // The paper's full §2.4.4 scenario: ToR1 loses A3/A4, ToR2
        // loses A1/A2. ToR1 then has no *specific* route for Prefix_B
        // (A1/A2 can't reach ToR2, A3/A4 unreachable from ToR1), but
        // the packet still arrives via default routes through the
        // regional spine — in 6 hops instead of 2.
        let mut f = figure3();
        for (tor, leaves) in [(f.tors[0], [f.a[2], f.a[3]]), (f.tors[1], [f.a[0], f.a[1]])] {
            for leaf in leaves {
                let l = f.topology.link_between(tor, leaf).unwrap().id;
                f.topology.set_link_state(l, LinkState::OperDown);
            }
        }
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        let m = MetadataService::from_topology(&f.topology);
        let tor1 = &fibs[f.tors[0].0 as usize];
        assert!(
            tor1.entry_for(f.prefixes[1]).is_none(),
            "no specific route for Prefix_B may survive at ToR1"
        );
        // Forward ToR1 -> Prefix_B: must succeed via default routes.
        let dst = f.prefixes[1].addr();
        let mut cur = f.tors[0];
        let mut hops = 0;
        loop {
            let fib = &fibs[cur.0 as usize];
            let e = fib.lookup(dst).expect("must not blackhole");
            if e.local && !e.prefix.is_default() {
                break;
            }
            // At a regional spine the default is local-originated; the
            // specific must exist there instead.
            let nh = fib.next_hops(e);
            assert!(!nh.is_empty(), "dead end at {cur:?}");
            cur = m.owner_of(nh[0]).unwrap();
            hops += 1;
            assert!(hops <= 10, "loop");
        }
        assert_eq!(cur, f.tors[1]);
        assert_eq!(hops, 6, "ToR,leaf,spine,regional,spine,leaf,ToR");
    }

    #[test]
    fn l2_port_bug_empties_fib() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_l2_port_bug(f.a[1]);
        let fibs = simulate(&f.topology, &cfg);
        // A1-bugged leaf has no sessions: only nothing (leaf hosts no
        // prefixes), so its FIB is empty.
        assert!(fibs[f.a[1].0 as usize].is_empty());
        // Its ToRs lose one uplink.
        let t1 = &fibs[f.tors[0].0 as usize];
        assert_eq!(t1.next_hops(t1.default_entry().unwrap()).len(), 3);
    }

    #[test]
    fn default_reject_policy_drops_default_only() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_default_reject(f.tors[0]);
        let fibs = simulate(&f.topology, &cfg);
        let fib = &fibs[f.tors[0].0 as usize];
        assert!(fib.default_entry().is_none(), "default must be rejected");
        assert!(fib.entry_for(f.prefixes[1]).is_some(), "specifics unaffected");
    }

    #[test]
    fn ecmp_misconfig_truncates_next_hops() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_max_ecmp(f.tors[0], 1);
        let fibs = simulate(&f.topology, &cfg);
        let fib = &fibs[f.tors[0].0 as usize];
        assert_eq!(fib.next_hops(fib.default_entry().unwrap()).len(), 1);
        let e = fib.entry_for(f.prefixes[1]).unwrap();
        assert_eq!(fib.next_hops(e).len(), 1);
    }

    #[test]
    fn rib_fib_bug_truncates_default_only() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_rib_fib_bug(f.tors[0], 1);
        let fibs = simulate(&f.topology, &cfg);
        let fib = &fibs[f.tors[0].0 as usize];
        assert_eq!(fib.next_hops(fib.default_entry().unwrap()).len(), 1);
        let e = fib.entry_for(f.prefixes[1]).unwrap();
        assert_eq!(fib.next_hops(e).len(), 4, "specifics keep full ECMP");
    }

    #[test]
    fn migration_asn_collision_hides_specifics_both_ways() {
        // Cluster B's leaves get cluster A's leaf ASN: ToRs in each
        // cluster stop seeing the other cluster's specifics (§2.6.2
        // Migrations), but defaults still deliver traffic.
        let f = figure3();
        let cluster_a_leaf_asn = f.topology.device(f.a[0]).asn;
        let mut cfg = SimConfig::healthy();
        for &leaf in &f.b {
            cfg = cfg.with_asn_override(leaf, cluster_a_leaf_asn);
        }
        let fibs = simulate(&f.topology, &cfg);
        let t1 = &fibs[f.tors[0].0 as usize];
        assert!(t1.entry_for(f.prefixes[2]).is_none());
        assert!(t1.entry_for(f.prefixes[3]).is_none());
        assert!(t1.entry_for(f.prefixes[1]).is_some(), "intra-cluster fine");
        let t3 = &fibs[f.tors[2].0 as usize];
        assert!(t3.entry_for(f.prefixes[0]).is_none());
        // Defaults still present on both sides.
        assert!(t1.default_entry().is_some());
        assert!(t3.default_entry().is_some());
    }

    /// A config exercising every override the simulator honors, so the
    /// mode/thread equivalence tests cover the full emit surface.
    fn faulted_config(f: &dctopo::generator::Figure3) -> SimConfig {
        SimConfig::healthy()
            .with_max_ecmp(f.tors[0], 2)
            .with_rib_fib_bug(f.tors[1], 1)
            .with_default_reject(f.a[0])
            .with_l2_port_bug(f.b[1])
            .with_asn_override(f.b[0], f.topology.device(f.a[0]).asn)
    }

    #[test]
    fn bitset_and_legacy_hop_paths_agree() {
        // The HopSet accumulation must reproduce the legacy Vec path
        // exactly — same tables, same interned pool layout, same
        // deterministic work counters — on healthy and fully-faulted
        // fabrics.
        let f = figure3();
        let medium = build_clos(&ClosParams::default());
        let configs = [SimConfig::healthy(), faulted_config(&f)];
        for config in &configs {
            let (legacy, ls) = simulate_with(
                &f.topology,
                config,
                SimOptions {
                    legacy_hops: true,
                    ..SimOptions::default()
                },
            );
            let (bitset, bs) = simulate_with(&f.topology, config, SimOptions::default());
            assert_eq!(legacy, bitset);
            assert_eq!(ls, bs);
        }
        let (legacy, _) = simulate_with(
            &medium,
            &SimConfig::healthy(),
            SimOptions {
                legacy_hops: true,
                ..SimOptions::default()
            },
        );
        let (bitset, _) = simulate_with(&medium, &SimConfig::healthy(), SimOptions::default());
        assert_eq!(legacy, bitset);
    }

    #[test]
    fn parallel_matches_serial_fixed_point() {
        // Prefix-parallel convergence must be bit-identical to the
        // serial loop — same final FIBs (interned pools included) and
        // the same iteration counts — at every thread count, on both
        // healthy and faulted fabrics.
        let f = figure3();
        let medium = build_clos(&ClosParams::default());
        for (topo, config) in [
            (&f.topology, SimConfig::healthy()),
            (&f.topology, faulted_config(&f)),
            (&medium, SimConfig::healthy()),
        ] {
            let (serial, serial_stats) = simulate_with(topo, &config, SimOptions::default());
            assert!(serial_stats.rounds > 0 && serial_stats.relaxations > 0);
            for threads in [2, 3, 8] {
                let (parallel, parallel_stats) = simulate_with(
                    topo,
                    &config,
                    SimOptions {
                        threads,
                        ..SimOptions::default()
                    },
                );
                assert_eq!(serial, parallel, "threads={threads}");
                assert_eq!(serial_stats, parallel_stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn auto_options_default_to_detected_cores_with_env_override() {
        let detected = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Unset: detection wins.
        assert_eq!(SimOptions::auto_from(|_| None).threads, detected);
        // Explicit override, including back down to serial.
        let fixed = |v: &'static str| SimOptions::auto_from(move |k| {
            assert_eq!(k, "RCDC_SIM_THREADS");
            Some(v.to_string())
        });
        assert_eq!(fixed("3").threads, 3);
        assert_eq!(fixed(" 1 ").threads, 1);
        // Invalid or zero values fall back to detection — the service
        // must not fail over a tuning knob.
        assert_eq!(fixed("lots").threads, detected);
        assert_eq!(fixed("0").threads, detected);
        assert_eq!(fixed("").threads, detected);
        // auto() never flips the hop representation.
        assert!(!SimOptions::auto().legacy_hops);
    }

    #[test]
    fn auto_options_keep_the_fixed_point_bit_identical() {
        // The service path's auto-threaded convergence must agree with
        // the serial loop byte for byte, whatever core count the host
        // detects.
        let f = figure3();
        let serial = simulate(&f.topology, &SimConfig::healthy());
        let (auto, _) = simulate_with(&f.topology, &SimConfig::healthy(), SimOptions::auto());
        assert_eq!(serial, auto);
    }

    #[test]
    fn stats_count_prefixes_and_rounds() {
        let f = figure3();
        let (_, stats) = simulate_with(&f.topology, &SimConfig::healthy(), SimOptions::default());
        // 4 hosted prefixes + the default route.
        assert_eq!(stats.prefixes, 5);
        // Every prefix needs at least one round to leave its origin.
        assert!(stats.rounds >= 5);
        let mut merged = SimStats::default();
        merged.absorb(&stats);
        assert_eq!(merged, stats);
    }

    #[test]
    fn generated_scale_fib_sizes() {
        // Medium datacenter: every device's FIB holds every hosted
        // prefix (+ default), matching "routing tables with several
        // thousands of prefixes" at scale.
        let params = ClosParams::default();
        let t = build_clos(&params);
        let fibs = simulate(&t, &SimConfig::healthy());
        let total_prefixes = (params.clusters * params.tors_per_cluster) as usize;
        for d in t.devices() {
            let fib = &fibs[d.id.0 as usize];
            match d.role {
                Role::Tor | Role::Leaf | Role::Spine => {
                    assert_eq!(fib.len(), total_prefixes + 1, "{}", d.name);
                }
                Role::RegionalSpine => {
                    assert_eq!(fib.len(), total_prefixes + 1, "{}", d.name);
                }
            }
        }
    }

    #[test]
    fn all_tor_pairs_reachable_in_healthy_network() {
        let t = build_clos(&ClosParams::default());
        let m = MetadataService::from_topology(&t);
        let fibs = simulate(&t, &SimConfig::healthy());
        let tors: Vec<_> = t.devices_with_role(Role::Tor).map(|d| d.id).collect();
        for &src in &tors {
            for &dst_tor in &tors {
                if src == dst_tor {
                    continue;
                }
                let dst = t.hosted_prefixes(dst_tor)[0].addr();
                let mut cur = src;
                let mut hops = 0;
                loop {
                    let fib = &fibs[cur.0 as usize];
                    let e = fib.lookup(dst).unwrap();
                    if e.local {
                        break;
                    }
                    cur = m.owner_of(fib.next_hops(e)[0]).unwrap();
                    hops += 1;
                    assert!(hops <= 4, "path too long {src:?}->{dst_tor:?}");
                }
                assert_eq!(cur, dst_tor);
                let same_cluster =
                    t.device(src).cluster == t.device(dst_tor).cluster;
                assert_eq!(hops, if same_cluster { 2 } else { 4 });
            }
        }
    }
}
