//! The per-prefix EBGP convergence engine.
//!
//! With no route aggregation, BGP converges per prefix independently.
//! For each prefix (the ToR-hosted specifics plus the regional-spine
//! default), the engine runs a monotone shortest-AS-path relaxation:
//!
//! * origins start at distance 0;
//! * a device at distance `L` advertises to every session-up neighbor,
//!   which accepts at distance `L+1` unless BGP loop prevention (own
//!   ASN in the advertised path, modulo ToR allowas-in) or an import
//!   policy rejects it;
//! * all neighbors delivering the minimal distance form the ECMP
//!   next-hop set.
//!
//! The advertised AS path of a device is reconstructed by walking BFS
//! parents (paths are at most 4 ASNs deep in a Clos), avoiding per-hop
//! path allocation across the ~10⁸ relaxations of a 10⁴-router run.

use crate::config::SimConfig;
use crate::fib::{Fib, FibBuilder};
use dctopo::{Asn, DeviceId, LinkId, Role, Topology};
use netprim::{Ipv4, Prefix};

/// The default route prefix originated by the regional spines.
pub fn default_prefix() -> Prefix {
    Prefix::DEFAULT
}

const INF: u8 = u8::MAX;
/// Upper bound on AS-path length in a 4-tier Clos (loop prevention
/// caps real paths at 4; 16 leaves margin for override experiments).
const MAX_LEN: usize = 16;

struct Session {
    peer: DeviceId,
    /// This device's own interface address on the shared link — the
    /// next-hop address the *peer* programs to reach this device.
    local_addr: Ipv4,
    link: LinkId,
}

/// Scratch state reused across prefixes.
struct Relaxation {
    best: Vec<u8>,
    parent: Vec<DeviceId>,
    hops: Vec<Vec<Ipv4>>,
    touched: Vec<DeviceId>,
    buckets: Vec<Vec<DeviceId>>,
}

impl Relaxation {
    fn new(n: usize) -> Self {
        Relaxation {
            best: vec![INF; n],
            parent: vec![DeviceId(0); n],
            hops: vec![Vec::new(); n],
            touched: Vec::new(),
            buckets: vec![Vec::new(); MAX_LEN],
        }
    }

    fn reset(&mut self) {
        for &d in &self.touched {
            self.best[d.0 as usize] = INF;
            self.hops[d.0 as usize].clear();
        }
        self.touched.clear();
        for b in &mut self.buckets {
            b.clear();
        }
    }
}

/// Simulate EBGP convergence and return one FIB per device (indexed by
/// device id).
pub fn simulate(topology: &Topology, config: &SimConfig) -> Vec<Fib> {
    let n = topology.len();

    // Effective ASNs (migration overrides applied).
    let asn: Vec<Asn> = topology
        .devices()
        .iter()
        .map(|d| {
            config
                .device(d.id)
                .and_then(|o| o.asn_override)
                .unwrap_or(d.asn)
        })
        .collect();

    let l2_bug: Vec<bool> = topology
        .devices()
        .iter()
        .map(|d| config.device(d.id).is_some_and(|o| o.l2_port_bug))
        .collect();

    // Session adjacency over healthy links between non-L2-bugged devices.
    let mut sessions: Vec<Vec<Session>> = (0..n).map(|_| Vec::new()).collect();
    for l in topology.links() {
        if !l.state.session_up() {
            continue;
        }
        if l2_bug[l.lo.0 as usize] || l2_bug[l.hi.0 as usize] {
            continue;
        }
        sessions[l.lo.0 as usize].push(Session {
            peer: l.hi,
            local_addr: l.lo_addr,
            link: l.id,
        });
        sessions[l.hi.0 as usize].push(Session {
            peer: l.lo,
            local_addr: l.hi_addr,
            link: l.id,
        });
    }
    let _ = &sessions; // borrow below
    let allowas_in: Vec<bool> = topology
        .devices()
        .iter()
        .map(|d| d.role == Role::Tor)
        .collect();

    let mut builders: Vec<FibBuilder> = topology
        .devices()
        .iter()
        .map(|d| FibBuilder::new(d.id))
        .collect();

    let mut relax = Relaxation::new(n);

    // Work items: every hosted prefix (origin: its ToR) and the default
    // route (origins: all regional spines).
    let mut work: Vec<(Prefix, Vec<DeviceId>)> = topology
        .all_hosted()
        .map(|(tor, prefix)| (prefix, vec![tor]))
        .collect();
    let regionals: Vec<DeviceId> = topology
        .devices_with_role(Role::RegionalSpine)
        .map(|d| d.id)
        .collect();
    work.push((default_prefix(), regionals));

    for (prefix, origins) in work {
        relax.reset();
        propagate(
            topology,
            config,
            &sessions,
            &asn,
            &allowas_in,
            &mut relax,
            prefix,
            &origins,
        );
        emit(topology, config, &relax, prefix, &origins, &mut builders);
    }

    builders.into_iter().map(FibBuilder::finish).collect()
}

/// Does the AS path advertised by `from` (walked via BFS parents)
/// contain `receiver_asn`? The advertised path is
/// `asn(from), asn(parent(from)), …, asn(origin)`.
fn path_contains(
    relax: &Relaxation,
    asn: &[Asn],
    mut from: DeviceId,
    receiver_asn: Asn,
) -> bool {
    loop {
        if asn[from.0 as usize] == receiver_asn {
            return true;
        }
        let len = relax.best[from.0 as usize];
        if len == 0 {
            return false; // reached an origin
        }
        from = relax.parent[from.0 as usize];
    }
}

#[allow(clippy::too_many_arguments)]
fn propagate(
    topology: &Topology,
    config: &SimConfig,
    sessions: &[Vec<Session>],
    asn: &[Asn],
    allowas_in: &[bool],
    relax: &mut Relaxation,
    prefix: Prefix,
    origins: &[DeviceId],
) {
    let is_default = prefix.is_default();
    for &o in origins {
        // An origin with the L2 bug still "hosts" the prefix but cannot
        // announce it (no sessions) — handled naturally since its
        // session list is empty.
        relax.best[o.0 as usize] = 0;
        relax.touched.push(o);
        relax.buckets[0].push(o);
    }
    let _ = topology;

    for level in 0..MAX_LEN - 1 {
        if relax.buckets[level].is_empty() {
            continue;
        }
        let senders = std::mem::take(&mut relax.buckets[level]);
        for d in senders {
            let du = d.0 as usize;
            if relax.best[du] != level as u8 {
                continue; // stale entry; improved earlier
            }
            for s in &sessions[du] {
                let nu = s.peer.0 as usize;
                let nl = level as u8 + 1;
                let cur = relax.best[nu];
                if nl > cur {
                    continue;
                }
                // Import policy: default-route rejection (§2.6.2).
                if is_default
                    && config
                        .device(s.peer)
                        .is_some_and(|o| o.reject_default_import)
                {
                    continue;
                }
                // BGP loop prevention on the receiver, unless allowas-in.
                if !allowas_in[nu] && path_contains(relax, asn, d, asn[nu]) {
                    continue;
                }
                // Self-announcement guard: an origin never reimports.
                if relax.best[nu] == 0 {
                    continue;
                }
                if nl < cur {
                    if cur == INF {
                        relax.touched.push(s.peer);
                    }
                    relax.best[nu] = nl;
                    relax.parent[nu] = d;
                    relax.hops[nu].clear();
                    relax.hops[nu].push(s.local_addr);
                    relax.buckets[nl as usize].push(s.peer);
                } else {
                    // Equal length: extend the ECMP set.
                    let hops = &mut relax.hops[nu];
                    if !hops.contains(&s.local_addr) {
                        hops.push(s.local_addr);
                    }
                }
                let _ = s.link;
            }
        }
    }
}

fn emit(
    topology: &Topology,
    config: &SimConfig,
    relax: &Relaxation,
    prefix: Prefix,
    origins: &[DeviceId],
    builders: &mut [FibBuilder],
) {
    let is_default = prefix.is_default();
    for &d in &relax.touched {
        let du = d.0 as usize;
        let len = relax.best[du];
        debug_assert_ne!(len, INF);
        if len == 0 {
            // Origin: ToRs install their hosted prefix as local.
            // Regional spines originate the default (modeled as local
            // too: it points out of the datacenter).
            builders[du].push(prefix, Vec::new(), true);
            continue;
        }
        let mut hops = relax.hops[du].clone();
        hops.sort_unstable();
        if let Some(o) = config.device(d) {
            if let Some(k) = o.max_ecmp {
                hops.truncate(k.max(1));
            }
            if is_default {
                if let Some(k) = o.rib_fib_default_hops {
                    hops.truncate(k.max(1));
                }
            }
        }
        builders[du].push(prefix, hops, false);
    }
    let _ = (topology, origins);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo::generator::{build_clos, figure3, ClosParams};
    use dctopo::{LinkState, MetadataService};

    /// Healthy Figure 3 datacenter, simulated.
    fn healthy_fig3() -> (dctopo::generator::Figure3, Vec<Fib>) {
        let f = figure3();
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        (f, fibs)
    }

    #[test]
    fn tor_has_default_via_all_leaves() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let fib = &fibs[f.tors[0].0 as usize];
        let d = fib.default_entry().expect("ToR must have a default route");
        let hops = fib.next_hops(d);
        assert_eq!(hops.len(), 4, "default must fan out over all 4 leaves");
        for h in hops {
            let owner = m.owner_of(*h).unwrap();
            assert_eq!(f.topology.device(owner).role, Role::Leaf);
            assert_eq!(
                f.topology.device(owner).cluster,
                f.topology.device(f.tors[0]).cluster
            );
        }
    }

    #[test]
    fn tor_has_specific_for_every_remote_prefix() {
        let (f, fibs) = healthy_fig3();
        let fib = &fibs[f.tors[0].0 as usize];
        // Own prefix is local; the other three are via the 4 leaves.
        let own = fib.entry_for(f.prefixes[0]).unwrap();
        assert!(own.local);
        for &p in &f.prefixes[1..] {
            let e = fib.entry_for(p).unwrap();
            assert!(!e.local);
            assert_eq!(fib.next_hops(e).len(), 4, "prefix {p}");
        }
        // Total: default + 4 prefixes.
        assert_eq!(fib.len(), 5);
    }

    #[test]
    fn leaf_forwards_cluster_prefixes_to_tors_directly() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        // A1: Prefix_A -> ToR1, Prefix_B -> ToR2 (paper Figure 4).
        let fib = &fibs[f.a[0].0 as usize];
        for (pi, tor) in [(0usize, f.tors[0]), (1, f.tors[1])] {
            let e = fib.entry_for(f.prefixes[pi]).unwrap();
            let hops = fib.next_hops(e);
            assert_eq!(hops.len(), 1);
            assert_eq!(m.owner_of(hops[0]), Some(tor));
        }
        // Prefix_C, Prefix_D -> D1 (the only spine of A1).
        for pi in [2usize, 3] {
            let e = fib.entry_for(f.prefixes[pi]).unwrap();
            let hops = fib.next_hops(e);
            assert_eq!(hops.len(), 1);
            assert_eq!(m.owner_of(hops[0]), Some(f.d[0]));
        }
        // Default -> D1.
        let de = fib.default_entry().unwrap();
        assert_eq!(m.owner_of(fib.next_hops(de)[0]), Some(f.d[0]));
        assert_eq!(fib.next_hops(de).len(), 1);
    }

    #[test]
    fn spine_routes_match_figure4() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let fib = &fibs[f.d[0].0 as usize];
        // D1: Prefix_A, Prefix_B -> A1; Prefix_C, Prefix_D -> B1.
        for (pi, leaf) in [(0usize, f.a[0]), (1, f.a[0]), (2, f.b[0]), (3, f.b[0])] {
            let e = fib.entry_for(f.prefixes[pi]).unwrap();
            let hops = fib.next_hops(e);
            assert_eq!(hops.len(), 1, "prefix index {pi}");
            assert_eq!(m.owner_of(hops[0]), Some(leaf));
        }
        // Default -> R1, R3.
        let de = fib.default_entry().unwrap();
        let owners: Vec<_> = fib
            .next_hops(de)
            .iter()
            .map(|&h| m.owner_of(h).unwrap())
            .collect();
        assert_eq!(owners.len(), 2);
        assert!(owners.contains(&f.r[0]) && owners.contains(&f.r[2]));
    }

    #[test]
    fn regional_spine_sees_every_prefix_but_no_valley() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let fib = &fibs[f.r[0].0 as usize];
        // R1 connects to D1 and D3; every prefix reachable via exactly
        // the spines that have it (1 per prefix here: plane wiring).
        for &p in &f.prefixes {
            let e = fib.entry_for(p).unwrap();
            for h in fib.next_hops(e) {
                let o = m.owner_of(*h).unwrap();
                assert_eq!(f.topology.device(o).role, Role::Spine);
            }
        }
        // The default is locally originated at regionals.
        assert!(fib.default_entry().unwrap().local);
        // No spine ever has a route through a regional back down:
        // D1 must not know Prefix_C via R1/R3 (valley-free).
        let d1 = &fibs[f.d[0].0 as usize];
        let e = d1.entry_for(f.prefixes[2]).unwrap();
        for h in d1.next_hops(e) {
            let o = m.owner_of(*h).unwrap();
            assert_eq!(f.topology.device(o).role, Role::Leaf);
        }
    }

    #[test]
    fn intra_cluster_path_is_two_hops() {
        // Forward a packet ToR1 -> Prefix_B by walking FIBs; the path
        // must be ToR1 -> leaf -> ToR2 (length 2, §2.1).
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let dst = f.prefixes[1].addr();
        let mut cur = f.tors[0];
        let mut hops = 0;
        loop {
            let fib = &fibs[cur.0 as usize];
            let e = fib.lookup(dst).expect("route must exist");
            if e.local {
                break;
            }
            cur = m.owner_of(fib.next_hops(e)[0]).unwrap();
            hops += 1;
            assert!(hops <= 8, "forwarding loop");
        }
        assert_eq!(cur, f.tors[1]);
        assert_eq!(hops, 2);
    }

    #[test]
    fn inter_cluster_path_is_four_hops() {
        let (f, fibs) = healthy_fig3();
        let m = MetadataService::from_topology(&f.topology);
        let dst = f.prefixes[2].addr(); // Prefix_C in cluster B
        let mut cur = f.tors[0];
        let mut path = vec![cur];
        loop {
            let fib = &fibs[cur.0 as usize];
            let e = fib.lookup(dst).unwrap();
            if e.local {
                break;
            }
            cur = m.owner_of(fib.next_hops(e)[0]).unwrap();
            path.push(cur);
            assert!(path.len() <= 8, "forwarding loop: {path:?}");
        }
        assert_eq!(path.len(), 5, "ToR,leaf,spine,leaf,ToR: {path:?}");
        assert_eq!(*path.last().unwrap(), f.tors[2]);
        let roles: Vec<Role> = path
            .iter()
            .map(|&d| f.topology.device(d).role)
            .collect();
        assert_eq!(
            roles,
            vec![Role::Tor, Role::Leaf, Role::Spine, Role::Leaf, Role::Tor]
        );
    }

    #[test]
    fn link_failure_shrinks_ecmp_sets() {
        let mut f = figure3();
        // Fail ToR1-A3 and ToR1-A4 (two of the paper's four failures).
        for &leaf in &[f.a[2], f.a[3]] {
            let l = f.topology.link_between(f.tors[0], leaf).unwrap().id;
            f.topology.set_link_state(l, LinkState::OperDown);
        }
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        let fib = &fibs[f.tors[0].0 as usize];
        let d = fib.default_entry().unwrap();
        assert_eq!(fib.next_hops(d).len(), 2, "two of four uplinks remain");
    }

    #[test]
    fn figure3_failures_blackhole_specifics_but_keep_default_path() {
        // The paper's full §2.4.4 scenario: ToR1 loses A3/A4, ToR2
        // loses A1/A2. ToR1 then has no *specific* route for Prefix_B
        // (A1/A2 can't reach ToR2, A3/A4 unreachable from ToR1), but
        // the packet still arrives via default routes through the
        // regional spine — in 6 hops instead of 2.
        let mut f = figure3();
        for (tor, leaves) in [(f.tors[0], [f.a[2], f.a[3]]), (f.tors[1], [f.a[0], f.a[1]])] {
            for leaf in leaves {
                let l = f.topology.link_between(tor, leaf).unwrap().id;
                f.topology.set_link_state(l, LinkState::OperDown);
            }
        }
        let fibs = simulate(&f.topology, &SimConfig::healthy());
        let m = MetadataService::from_topology(&f.topology);
        let tor1 = &fibs[f.tors[0].0 as usize];
        assert!(
            tor1.entry_for(f.prefixes[1]).is_none(),
            "no specific route for Prefix_B may survive at ToR1"
        );
        // Forward ToR1 -> Prefix_B: must succeed via default routes.
        let dst = f.prefixes[1].addr();
        let mut cur = f.tors[0];
        let mut hops = 0;
        loop {
            let fib = &fibs[cur.0 as usize];
            let e = fib.lookup(dst).expect("must not blackhole");
            if e.local && !e.prefix.is_default() {
                break;
            }
            // At a regional spine the default is local-originated; the
            // specific must exist there instead.
            let nh = fib.next_hops(e);
            assert!(!nh.is_empty(), "dead end at {cur:?}");
            cur = m.owner_of(nh[0]).unwrap();
            hops += 1;
            assert!(hops <= 10, "loop");
        }
        assert_eq!(cur, f.tors[1]);
        assert_eq!(hops, 6, "ToR,leaf,spine,regional,spine,leaf,ToR");
    }

    #[test]
    fn l2_port_bug_empties_fib() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_l2_port_bug(f.a[1]);
        let fibs = simulate(&f.topology, &cfg);
        // A1-bugged leaf has no sessions: only nothing (leaf hosts no
        // prefixes), so its FIB is empty.
        assert!(fibs[f.a[1].0 as usize].is_empty());
        // Its ToRs lose one uplink.
        let t1 = &fibs[f.tors[0].0 as usize];
        assert_eq!(t1.next_hops(t1.default_entry().unwrap()).len(), 3);
    }

    #[test]
    fn default_reject_policy_drops_default_only() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_default_reject(f.tors[0]);
        let fibs = simulate(&f.topology, &cfg);
        let fib = &fibs[f.tors[0].0 as usize];
        assert!(fib.default_entry().is_none(), "default must be rejected");
        assert!(fib.entry_for(f.prefixes[1]).is_some(), "specifics unaffected");
    }

    #[test]
    fn ecmp_misconfig_truncates_next_hops() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_max_ecmp(f.tors[0], 1);
        let fibs = simulate(&f.topology, &cfg);
        let fib = &fibs[f.tors[0].0 as usize];
        assert_eq!(fib.next_hops(fib.default_entry().unwrap()).len(), 1);
        let e = fib.entry_for(f.prefixes[1]).unwrap();
        assert_eq!(fib.next_hops(e).len(), 1);
    }

    #[test]
    fn rib_fib_bug_truncates_default_only() {
        let f = figure3();
        let cfg = SimConfig::healthy().with_rib_fib_bug(f.tors[0], 1);
        let fibs = simulate(&f.topology, &cfg);
        let fib = &fibs[f.tors[0].0 as usize];
        assert_eq!(fib.next_hops(fib.default_entry().unwrap()).len(), 1);
        let e = fib.entry_for(f.prefixes[1]).unwrap();
        assert_eq!(fib.next_hops(e).len(), 4, "specifics keep full ECMP");
    }

    #[test]
    fn migration_asn_collision_hides_specifics_both_ways() {
        // Cluster B's leaves get cluster A's leaf ASN: ToRs in each
        // cluster stop seeing the other cluster's specifics (§2.6.2
        // Migrations), but defaults still deliver traffic.
        let f = figure3();
        let cluster_a_leaf_asn = f.topology.device(f.a[0]).asn;
        let mut cfg = SimConfig::healthy();
        for &leaf in &f.b {
            cfg = cfg.with_asn_override(leaf, cluster_a_leaf_asn);
        }
        let fibs = simulate(&f.topology, &cfg);
        let t1 = &fibs[f.tors[0].0 as usize];
        assert!(t1.entry_for(f.prefixes[2]).is_none());
        assert!(t1.entry_for(f.prefixes[3]).is_none());
        assert!(t1.entry_for(f.prefixes[1]).is_some(), "intra-cluster fine");
        let t3 = &fibs[f.tors[2].0 as usize];
        assert!(t3.entry_for(f.prefixes[0]).is_none());
        // Defaults still present on both sides.
        assert!(t1.default_entry().is_some());
        assert!(t3.default_entry().is_some());
    }

    #[test]
    fn generated_scale_fib_sizes() {
        // Medium datacenter: every device's FIB holds every hosted
        // prefix (+ default), matching "routing tables with several
        // thousands of prefixes" at scale.
        let params = ClosParams::default();
        let t = build_clos(&params);
        let fibs = simulate(&t, &SimConfig::healthy());
        let total_prefixes = (params.clusters * params.tors_per_cluster) as usize;
        for d in t.devices() {
            let fib = &fibs[d.id.0 as usize];
            match d.role {
                Role::Tor | Role::Leaf | Role::Spine => {
                    assert_eq!(fib.len(), total_prefixes + 1, "{}", d.name);
                }
                Role::RegionalSpine => {
                    assert_eq!(fib.len(), total_prefixes + 1, "{}", d.name);
                }
            }
        }
    }

    #[test]
    fn all_tor_pairs_reachable_in_healthy_network() {
        let t = build_clos(&ClosParams::default());
        let m = MetadataService::from_topology(&t);
        let fibs = simulate(&t, &SimConfig::healthy());
        let tors: Vec<_> = t.devices_with_role(Role::Tor).map(|d| d.id).collect();
        for &src in &tors {
            for &dst_tor in &tors {
                if src == dst_tor {
                    continue;
                }
                let dst = t.hosted_prefixes(dst_tor)[0].addr();
                let mut cur = src;
                let mut hops = 0;
                loop {
                    let fib = &fibs[cur.0 as usize];
                    let e = fib.lookup(dst).unwrap();
                    if e.local {
                        break;
                    }
                    cur = m.owner_of(fib.next_hops(e)[0]).unwrap();
                    hops += 1;
                    assert!(hops <= 4, "path too long {src:?}->{dst_tor:?}");
                }
                assert_eq!(cur, dst_tor);
                let same_cluster =
                    t.device(src).cluster == t.device(dst_tor).cluster;
                assert_eq!(hops, if same_cluster { 2 } else { 4 });
            }
        }
    }
}
