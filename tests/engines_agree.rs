//! Cross-engine differential testing.
//!
//! Each check has (at least) two independent implementations in this
//! workspace, and the paper's guarantees only hold if they agree:
//!
//! * RCDC: the trie engine (§2.5.2) vs the bit-vector SMT engine
//!   (§2.5.1), over randomly mutated FIBs;
//! * SecGuru: the SMT engine vs the interval (box-algebra) baseline,
//!   over randomly generated policies and contracts, with every
//!   violation witness re-validated against the reference
//!   `Policy::allows` semantics.

use proptest::prelude::*;
use validatedc::prelude::*;

// ---------------------------------------------------------------------------
// RCDC: trie vs SMT under random FIB mutations
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FibMutation {
    /// Remove the entry for prefix #k on device #d.
    DropEntry { device: usize, prefix: usize },
    /// Truncate next hops of prefix #k on device #d to one.
    TruncateHops { device: usize, prefix: usize },
    /// Remove the default route on device #d.
    DropDefault { device: usize },
    /// Truncate the default route's hops on device #d.
    TruncateDefault { device: usize },
}

fn mutation_strategy() -> BoxedStrategy<Vec<FibMutation>> {
    let one = prop_oneof![
        (0usize..16, 0usize..4)
            .prop_map(|(device, prefix)| FibMutation::DropEntry { device, prefix }),
        (0usize..16, 0usize..4)
            .prop_map(|(device, prefix)| FibMutation::TruncateHops { device, prefix }),
        (0usize..16).prop_map(|device| FibMutation::DropDefault { device }),
        (0usize..16).prop_map(|device| FibMutation::TruncateDefault { device }),
    ];
    proptest::collection::vec(one, 0..5).boxed()
}

fn apply_mutations(
    f: &dctopo::generator::Figure3,
    fibs: &mut [bgpsim::Fib],
    mutations: &[FibMutation],
) {
    for m in mutations {
        let (device, drop_prefix, truncate_prefix) = match *m {
            FibMutation::DropEntry { device, prefix } => {
                (device, Some(f.prefixes[prefix]), None)
            }
            FibMutation::TruncateHops { device, prefix } => {
                (device, None, Some(f.prefixes[prefix]))
            }
            FibMutation::DropDefault { device } => (device, Some(Prefix::DEFAULT), None),
            FibMutation::TruncateDefault { device } => (device, None, Some(Prefix::DEFAULT)),
        };
        let original = &fibs[device];
        let mut b = FibBuilder::new(original.device());
        for e in original.entries() {
            if Some(e.prefix) == drop_prefix {
                continue;
            }
            let mut hops = original.next_hops(e).to_vec();
            if Some(e.prefix) == truncate_prefix {
                hops.truncate(1);
            }
            b.push(e.prefix, hops, e.local);
        }
        fibs[device] = b.finish();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rcdc_engines_agree_on_mutated_fibs(mutations in mutation_strategy()) {
        let f = figure3();
        let mut fibs = simulate(&f.topology, &SimConfig::healthy());
        apply_mutations(&f, &mut fibs, &mutations);
        let meta = MetadataService::from_topology(&f.topology);
        let contracts = generate_contracts(&meta);

        for (trie, smt) in [
            (TrieEngine::new(), SmtEngine::new()),
            (TrieEngine::semantic(), SmtEngine::semantic()),
        ] {
            for (fib, dc) in fibs.iter().zip(&contracts) {
                let rt = trie.validate_device(fib, dc);
                let rs = smt.validate_device(fib, dc);
                let mut kt: Vec<_> = rt.violations.iter().map(|v| (v.prefix, v.kind)).collect();
                let mut ks: Vec<_> = rs.violations.iter().map(|v| (v.prefix, v.kind)).collect();
                kt.sort(); kt.dedup();
                ks.sort(); ks.dedup();
                prop_assert_eq!(
                    kt, ks,
                    "engine disagreement on device {:?} under {:?}",
                    fib.device(), mutations
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SecGuru: SMT vs interval baseline on random policies
// ---------------------------------------------------------------------------

fn arb_range() -> BoxedStrategy<IpRange> {
    prop_oneof![
        Just(IpRange::ALL),
        (0u8..4).prop_map(|i| {
            Prefix::new(Ipv4::new(10, i * 16, 0, 0), 12).unwrap().range()
        }),
        (0u8..4).prop_map(|i| {
            Prefix::new(Ipv4::new(104, 208, i * 8, 0), 21).unwrap().range()
        }),
    ]
    .boxed()
}

fn arb_ports() -> BoxedStrategy<PortRange> {
    prop_oneof![
        Just(PortRange::ALL),
        prop_oneof![Just(80u16), Just(443), Just(445), Just(22)]
            .prop_map(PortRange::single),
        Just(PortRange::new(1024, 65535).unwrap()),
    ]
    .boxed()
}

fn arb_protocol() -> BoxedStrategy<Protocol> {
    prop_oneof![
        Just(Protocol::Any),
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
    ]
    .boxed()
}

fn arb_space() -> BoxedStrategy<HeaderSpace> {
    (arb_range(), arb_ports(), arb_range(), arb_ports(), arb_protocol())
        .prop_map(|(src, src_ports, dst, dst_ports, protocol)| HeaderSpace {
            src,
            src_ports,
            dst,
            dst_ports,
            protocol,
        })
        .boxed()
}

fn arb_policy(convention: Convention) -> BoxedStrategy<Policy> {
    proptest::collection::vec((arb_space(), any::<bool>()), 1..12)
        .prop_map(move |rules| {
            let rules: Vec<Rule> = rules
                .into_iter()
                .enumerate()
                .map(|(i, (filter, permit))| Rule {
                    name: format!("r{i}"),
                    priority: i as u32,
                    filter,
                    action: if permit { Action::Permit } else { Action::Deny },
                })
                .collect();
            Policy::new("random", convention, rules)
        })
        .boxed()
}

fn arb_contract() -> BoxedStrategy<Contract> {
    (arb_space(), any::<bool>())
        .prop_map(|(filter, permit)| {
            Contract::new(
                "c",
                filter,
                if permit { Action::Permit } else { Action::Deny },
            )
        })
        .boxed()
}

fn check_agreement(policy: Policy, contract: Contract) -> Result<(), TestCaseError> {
    let interval = IntervalEngine::new();
    let iv = interval.check(&policy, &contract);
    let mut sg = SecGuru::new(policy.clone());
    let sv = sg.check(&contract);
    prop_assert_eq!(
        iv.holds,
        sv.holds,
        "engines disagree: policy {:?} contract {:?}",
        policy,
        contract
    );
    // Witness soundness against the reference evaluator.
    for outcome in [&iv, &sv] {
        if let Some(w) = &outcome.witness {
            prop_assert!(contract.filter.contains(w), "witness outside contract");
            let allowed = policy.allows(w);
            match contract.expect {
                Action::Permit => prop_assert!(!allowed, "permit-contract witness must be denied"),
                Action::Deny => prop_assert!(allowed, "deny-contract witness must be allowed"),
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn secguru_engines_agree_first_applicable(
        policy in arb_policy(Convention::FirstApplicable),
        contract in arb_contract(),
    ) {
        check_agreement(policy, contract)?;
    }

    #[test]
    fn secguru_engines_agree_deny_overrides(
        policy in arb_policy(Convention::DenyOverrides),
        contract in arb_contract(),
    ) {
        check_agreement(policy, contract)?;
    }

    #[test]
    fn passing_contracts_hold_on_sampled_packets(
        policy in arb_policy(Convention::FirstApplicable),
        contract in arb_contract(),
    ) {
        // When both engines say the contract holds, random packets from
        // the contract space must behave as promised.
        let mut sg = SecGuru::new(policy.clone());
        if sg.check(&contract).holds {
            // Deterministic corner samples of the contract space.
            let f = &contract.filter;
            let corners = [
                (f.src.start(), f.src_ports.start(), f.dst.start(), f.dst_ports.start()),
                (f.src.end(), f.src_ports.end(), f.dst.end(), f.dst_ports.end()),
                (f.src.start(), f.src_ports.end(), f.dst.end(), f.dst_ports.start()),
            ];
            for (src_ip, src_port, dst_ip, dst_port) in corners {
                let h = HeaderTuple {
                    src_ip,
                    src_port,
                    dst_ip,
                    dst_port,
                    protocol: f.protocol.number().unwrap_or(99),
                };
                let allowed = policy.allows(&h);
                match contract.expect {
                    Action::Permit => prop_assert!(allowed, "{h} must be allowed"),
                    Action::Deny => prop_assert!(!allowed, "{h} must be denied"),
                }
            }
        }
    }
}
