//! Plan-level invariants of the rollout planner: the emitted answer is
//! a property of the change *set* and the safety condition, not of how
//! the search was driven.
//!
//! Properties over random change sets (link maintenance + device
//! overrides, distinct targets) on the Figure-3 fabric:
//!
//! * **Driver determinism** — serial and parallel planning return the
//!   same verdict, down to the exact step order and the exact minimal
//!   unsafe change set.
//! * **Input-order irrelevance** — changes commute, so permuting the
//!   submitted set never flips plannability.
//! * **Emitted plans replay clean** — a safe plan's own order passes
//!   the step-by-step check it was searched under.
//! * **k=1 ≡ precheck** — planning a single change with the final
//!   state not accepted asks exactly the §2.7 pre-check question.
//!
//! The byte-level cross-check of the incremental state evaluation
//! against brute-force re-simulation lives in the difftest `rollout`
//! oracle; these properties pin the search-level invariants.

use proptest::prelude::*;
use validatedc::prelude::*;

/// A replayable change pick, materialized against the fabric.
#[derive(Debug, Clone)]
enum Pick {
    Link(usize, usize),
    Override(usize, usize),
}

fn pick_strategy() -> impl Strategy<Value = Vec<Pick>> {
    let one = prop_oneof![
        (0usize..10_000, 0usize..3).prop_map(|(l, s)| Pick::Link(l, s)),
        (0usize..10_000, 0usize..3).prop_map(|(d, o)| Pick::Override(d, o)),
    ];
    proptest::collection::vec(one, 0..5)
}

/// Materialize picks into changes with distinct targets.
fn build_changes(topology: &Topology, picks: &[Pick]) -> Vec<ConfigChange> {
    let mut out: Vec<ConfigChange> = Vec::new();
    for p in picks {
        let change = match *p {
            Pick::Link(l, s) => ConfigChange::SetLinkState {
                link: topology.links()[l % topology.links().len()].id,
                state: [LinkState::Up, LinkState::AdminShut, LinkState::OperDown][s % 3],
            },
            Pick::Override(d, o) => ConfigChange::SetOverride {
                device: DeviceId((d % topology.len()) as u32),
                config: match o % 3 {
                    0 => DeviceOverride::default(),
                    1 => DeviceOverride {
                        reject_default_import: true,
                        ..DeviceOverride::default()
                    },
                    _ => DeviceOverride {
                        max_ecmp: Some(1),
                        ..DeviceOverride::default()
                    },
                },
            },
        };
        let clashes = out.iter().any(|c| match (c, &change) {
            (
                ConfigChange::SetLinkState { link: a, .. },
                ConfigChange::SetLinkState { link: b, .. },
            ) => a == b,
            (
                ConfigChange::SetOverride { device: a, .. },
                ConfigChange::SetOverride { device: b, .. },
            ) => a == b,
            _ => false,
        });
        if !clashes {
            out.push(change);
        }
    }
    out
}

fn fig3_planner() -> (dctopo::generator::Figure3, RolloutPlanner) {
    let f = figure3();
    let meta = MetadataService::from_topology(&f.topology);
    let planner = Validator::new(&meta).build_planner(&ManagedNetwork::new(f.topology.clone()));
    (f, planner)
}

fn condition(i: usize) -> FailCondition {
    [
        FailCondition::AnyViolation,
        FailCondition::Blackhole,
        FailCondition::AtLeast(Risk::High),
    ][i % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plan_verdict_is_thread_count_invariant(
        picks in pick_strategy(),
        cond_i in 0usize..3,
        accept_final in any::<bool>(),
    ) {
        let (f, planner) = fig3_planner();
        let changes = build_changes(&f.topology, &picks);
        let verdicts: Vec<PlanVerdict> = [1usize, 2, 5]
            .iter()
            .map(|&threads| {
                let opts = PlanOptions {
                    condition: condition(cond_i),
                    accept_final,
                    threads,
                    ..PlanOptions::default()
                };
                planner.plan(&changes, &opts).unwrap().verdict
            })
            .collect();
        prop_assert_eq!(&verdicts[0], &verdicts[1]);
        prop_assert_eq!(&verdicts[1], &verdicts[2]);
    }

    #[test]
    fn permuting_the_change_set_never_flips_plannability(
        picks in pick_strategy(),
        rot in 0usize..5,
        cond_i in 0usize..3,
    ) {
        let (f, planner) = fig3_planner();
        let changes = build_changes(&f.topology, &picks);
        let mut permuted = changes.clone();
        if !permuted.is_empty() {
            let rot = rot % permuted.len();
            permuted.rotate_left(rot);
            permuted.reverse();
        }
        let opts = PlanOptions {
            condition: condition(cond_i),
            ..PlanOptions::default()
        };
        let a = planner.plan(&changes, &opts).unwrap();
        let b = planner.plan(&permuted, &opts).unwrap();
        prop_assert_eq!(a.is_safe(), b.is_safe());
    }

    #[test]
    fn emitted_plans_replay_clean(
        picks in pick_strategy(),
        cond_i in 0usize..3,
        accept_final in any::<bool>(),
    ) {
        let (f, planner) = fig3_planner();
        let changes = build_changes(&f.topology, &picks);
        let opts = PlanOptions {
            condition: condition(cond_i),
            accept_final,
            ..PlanOptions::default()
        };
        let report = planner.plan(&changes, &opts).unwrap();
        if let PlanVerdict::Safe(steps) = &report.verdict {
            prop_assert_eq!(steps.len(), changes.len());
            let ordered: Vec<ConfigChange> =
                steps.iter().map(|s| s.change.clone()).collect();
            let replay = planner.check_order(&ordered, &opts).unwrap();
            prop_assert_eq!(replay.first_unsafe, None);
        }
    }

    #[test]
    fn single_change_plan_equals_precheck(
        picks in pick_strategy(),
    ) {
        let (f, planner) = fig3_planner();
        let meta = MetadataService::from_topology(&f.topology);
        let checker =
            Validator::new(&meta).build_precheck(&ManagedNetwork::new(f.topology.clone()));
        let changes = build_changes(&f.topology, &picks);
        if let Some(change) = changes.first() {
            let single = [change.clone()];
            let opts = PlanOptions {
                accept_final: false,
                ..PlanOptions::default()
            };
            let report = planner.plan(&single, &opts).unwrap();
            let precheck = checker.precheck(&single);
            prop_assert_eq!(report.is_safe(), precheck.passed());
        }
    }
}
