//! Incremental validation is *exactly* full validation.
//!
//! The delta path (`Engine::validate_delta`) exists purely as an
//! optimization: given the prior snapshot's verdict and the FIB delta,
//! it must produce a report byte-equal to validating the new snapshot
//! from scratch. This file establishes that equivalence over random
//! churn — any divergence means the affected-contract analysis in the
//! trie engine under- or over-approximates.
//!
//! The same churn also exercises the delta codec end-to-end:
//! `Fib::delta` → wire encode/decode → `Fib::apply_delta` must
//! reproduce the target snapshot exactly.

use proptest::prelude::*;
use validatedc::prelude::*;

#[derive(Debug, Clone)]
enum FibMutation {
    /// Remove the entry for prefix #k on device #d.
    DropEntry { device: usize, prefix: usize },
    /// Truncate next hops of prefix #k on device #d to one.
    TruncateHops { device: usize, prefix: usize },
    /// Remove the default route on device #d.
    DropDefault { device: usize },
    /// Truncate the default route's hops on device #d.
    TruncateDefault { device: usize },
}

fn mutation_strategy() -> BoxedStrategy<Vec<FibMutation>> {
    let one = prop_oneof![
        (0usize..16, 0usize..4)
            .prop_map(|(device, prefix)| FibMutation::DropEntry { device, prefix }),
        (0usize..16, 0usize..4)
            .prop_map(|(device, prefix)| FibMutation::TruncateHops { device, prefix }),
        (0usize..16).prop_map(|device| FibMutation::DropDefault { device }),
        (0usize..16).prop_map(|device| FibMutation::TruncateDefault { device }),
    ];
    proptest::collection::vec(one, 0..6).boxed()
}

fn apply_mutations(
    f: &dctopo::generator::Figure3,
    fibs: &mut [Fib],
    mutations: &[FibMutation],
) {
    for m in mutations {
        let (device, drop_prefix, truncate_prefix) = match *m {
            FibMutation::DropEntry { device, prefix } => (device, Some(f.prefixes[prefix]), None),
            FibMutation::TruncateHops { device, prefix } => {
                (device, None, Some(f.prefixes[prefix]))
            }
            FibMutation::DropDefault { device } => (device, Some(Prefix::DEFAULT), None),
            FibMutation::TruncateDefault { device } => (device, None, Some(Prefix::DEFAULT)),
        };
        let original = &fibs[device];
        let mut b = FibBuilder::new(original.device());
        for e in original.entries() {
            if Some(e.prefix) == drop_prefix {
                continue;
            }
            let mut hops = original.next_hops(e).to_vec();
            if Some(e.prefix) == truncate_prefix {
                hops.truncate(1);
            }
            b.push(e.prefix, hops, e.local);
        }
        fibs[device] = b.finish();
    }
}

/// Check `validate_delta` against `validate_device` for every device of
/// an old→new transition, on every engine backend.
fn assert_incremental_matches_full(
    old_fibs: &[Fib],
    new_fibs: &[Fib],
    contracts: &[rcdc::contracts::DeviceContracts],
) -> Result<(), TestCaseError> {
    let engines: Vec<Box<dyn Engine + Sync>> = vec![
        EngineChoice::Trie.instantiate(),
        EngineChoice::TrieSemantic.instantiate(),
        EngineChoice::Smt.instantiate(),
    ];
    for engine in &engines {
        for ((old, new), dc) in old_fibs.iter().zip(new_fibs).zip(contracts) {
            let prior = engine.validate_device(old, dc);
            let delta = Fib::delta(old, new);
            let incremental = engine.validate_delta(new, dc, &delta, &prior);
            let full = engine.validate_device(new, dc);
            prop_assert_eq!(
                &incremental,
                &full,
                "incremental != full on device {:?} ({} engine, delta {} rules)",
                new.device(),
                engine.name(),
                delta.rule_count()
            );
        }
    }
    Ok(())
}

/// Check the delta codec round trip: encode → decode → apply
/// reproduces the target snapshot.
fn assert_delta_round_trips(old_fibs: &[Fib], new_fibs: &[Fib]) -> Result<(), TestCaseError> {
    for (old, new) in old_fibs.iter().zip(new_fibs) {
        let delta = Fib::delta(old, new);
        let decoded = netprim::wire::FibDelta::decode(&delta.encode()).expect("codec");
        let applied = old.apply_delta(&decoded).expect("apply");
        prop_assert_eq!(applied.content_hash(), new.content_hash());
        prop_assert_eq!(applied.len(), new.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random churn on Figure 3: old and new snapshots are independent
    /// random mutations of the healthy state, so deltas contain
    /// additions, removals, and modifications in both directions.
    #[test]
    fn incremental_equals_full_under_random_churn(
        old_mutations in mutation_strategy(),
        new_mutations in mutation_strategy(),
    ) {
        let f = figure3();
        let healthy = simulate(&f.topology, &SimConfig::healthy());
        let mut old_fibs = healthy.clone();
        apply_mutations(&f, &mut old_fibs, &old_mutations);
        let mut new_fibs = healthy;
        apply_mutations(&f, &mut new_fibs, &new_mutations);
        let meta = MetadataService::from_topology(&f.topology);
        let contracts = generate_contracts(&meta);

        assert_incremental_matches_full(&old_fibs, &new_fibs, &contracts)?;
        assert_delta_round_trips(&old_fibs, &new_fibs)?;
    }

    /// The Validator warm path produces byte-equal datacenter reports.
    #[test]
    fn warm_pass_equals_cold_pass_under_random_churn(
        old_mutations in mutation_strategy(),
        new_mutations in mutation_strategy(),
    ) {
        let f = figure3();
        let healthy = simulate(&f.topology, &SimConfig::healthy());
        let mut old_fibs = healthy.clone();
        apply_mutations(&f, &mut old_fibs, &old_mutations);
        let mut new_fibs = healthy;
        apply_mutations(&f, &mut new_fibs, &new_mutations);
        let meta = MetadataService::from_topology(&f.topology);

        let v = Validator::new(&meta).build();
        let prior = v.run(&old_fibs);
        let warm = v.run_incremental(&new_fibs, &prior);
        let cold = v.run(&new_fibs);
        prop_assert_eq!(&warm.reports, &cold.reports);
        prop_assert_eq!(&warm.fib_hashes, &cold.fib_hashes);
    }
}

/// Deterministic single-device churn across every device of the
/// default Clos (the acceptance shape): truncate the first multi-hop
/// entry and compare incremental vs full on the churned device.
#[test]
fn incremental_equals_full_on_default_clos_churn() {
    let topology = build_clos(&ClosParams::default());
    let fibs = simulate(&topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&topology);
    let contracts = generate_contracts(&meta);
    let trie = TrieEngine::new();

    for (fib, dc) in fibs.iter().zip(&contracts) {
        let Some(target) = fib
            .entries()
            .iter()
            .find(|e| !e.local && fib.next_hops(e).len() > 1)
            .map(|e| e.prefix)
        else {
            continue;
        };
        let mut b = FibBuilder::new(fib.device());
        for e in fib.entries() {
            let mut hops = fib.next_hops(e).to_vec();
            if e.prefix == target {
                hops.truncate(1);
            }
            b.push(e.prefix, hops, e.local);
        }
        let churned = b.finish();

        let prior = trie.validate_device(fib, dc);
        let delta = Fib::delta(fib, &churned);
        assert!(!delta.is_empty());
        let incremental = trie.validate_delta(&churned, dc, &delta, &prior);
        let full = trie.validate_device(&churned, dc);
        assert_eq!(incremental, full, "device {:?}", fib.device());
    }
}
