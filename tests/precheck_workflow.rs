//! E11 — the §2.7 change-validation pipeline (Figure 7): bad changes
//! are blocked before production, good changes flow through, and the
//! emulator reports the same error classes as live monitoring.
//!
//! The workflow is owned by a [`Prechecker`] constructed through the
//! unified builder (`Validator::new(&meta).build_precheck(production)`).

use validatedc::prelude::*;

fn prechecker(production: ManagedNetwork) -> Prechecker {
    let meta = MetadataService::from_topology(&production.topology);
    Validator::new(&meta).build_precheck(&production)
}

#[test]
fn route_map_bug_blocked_before_production() {
    let f = figure3();
    let mut w = prechecker(ManagedNetwork::new(f.topology.clone()));
    let bad = DeviceOverride {
        reject_default_import: true,
        ..DeviceOverride::default()
    };
    let outcome = w.submit(&[ConfigChange::SetOverride {
        device: f.tors[0],
        config: bad,
    }]);
    assert!(matches!(outcome, WorkflowOutcome::RejectedAtPrecheck(_)));
    assert!(w.validate(w.production()).is_empty());
}

#[test]
fn interop_style_bug_mix_blocked() {
    // A change batch mixing an ECMP misconfiguration with an ASN
    // override — the multi-root-cause change the pre-check pipeline is
    // built to catch.
    let f = figure3();
    let mut w = prechecker(ManagedNetwork::new(f.topology.clone()));
    let ecmp = DeviceOverride {
        max_ecmp: Some(1),
        ..DeviceOverride::default()
    };
    let asn = DeviceOverride {
        asn_override: Some(f.topology.device(f.a[0]).asn),
        ..DeviceOverride::default()
    };
    let outcome = w.submit(&[
        ConfigChange::SetOverride {
            device: f.tors[2],
            config: ecmp,
        },
        ConfigChange::SetOverride {
            device: f.b[0],
            config: asn,
        },
    ]);
    match outcome {
        WorkflowOutcome::RejectedAtPrecheck(report) => {
            let regs = report.regressions();
            assert!(regs.iter().any(|v| v.device == f.tors[2]));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn benign_then_restore_deploys_cleanly() {
    let f = figure3();
    let mut w = prechecker(ManagedNetwork::new(f.topology.clone()));
    // Benign no-op.
    assert!(matches!(
        w.submit(&[ConfigChange::SetOverride {
            device: f.d[0],
            config: DeviceOverride::default(),
        }]),
        WorkflowOutcome::Deployed
    ));
    assert!(w.validate(w.production()).is_empty());
}

#[test]
fn repair_change_on_faulted_network_deploys() {
    // Production has an admin-shut link (drift). The change that
    // restores it must pass the pre-check (it removes violations).
    let f = figure3();
    let mut production = ManagedNetwork::new(f.topology.clone());
    let link = production
        .topology
        .link_between(f.tors[0], f.a[0])
        .unwrap()
        .id;
    production.topology.set_link_state(link, LinkState::AdminShut);
    let mut w = prechecker(production);
    assert!(!w.validate(w.production()).is_empty());

    let outcome = w.submit(&[ConfigChange::SetLinkState {
        link,
        state: LinkState::Up,
    }]);
    assert!(matches!(outcome, WorkflowOutcome::Deployed));
    assert!(w.validate(w.production()).is_empty());
}

#[test]
fn emulated_and_live_error_classes_match() {
    // §2.7: "RCDC is then used on FIBs extracted from these networks,
    // reporting the same class of errors as on the live network."
    let f = figure3();
    for scenario in 0..3u32 {
        let mut live = ManagedNetwork::new(f.topology.clone());
        match scenario {
            0 => {
                live.config = std::mem::take(&mut live.config).with_rib_fib_bug(f.tors[0], 1)
            }
            1 => live.config = std::mem::take(&mut live.config).with_l2_port_bug(f.a[2]),
            _ => {
                let l = live.topology.link_between(f.tors[1], f.a[1]).unwrap().id;
                live.topology.set_link_state(l, LinkState::OperDown);
            }
        }
        let emulated = live.clone();
        let meta = MetadataService::from_topology(&f.topology);
        let contracts = generate_contracts(&meta);
        assert_eq!(
            live.validate(&contracts),
            emulated.validate(&contracts),
            "scenario {scenario}"
        );
    }
}
