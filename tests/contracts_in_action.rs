//! E7 — the paper's worked example, end to end (§2.4.4, Figures 3/4).
//!
//! Four link failures in the Figure 3 topology: ToR1 loses its uplinks
//! to A3/A4, ToR2 loses its uplinks to A1/A2. The paper states the
//! exact violation pattern; both verification engines must reproduce
//! it, and the independent global checker must confirm the "longer
//! route" consequence.

use validatedc::prelude::*;

struct Fixture {
    f: dctopo::generator::Figure3,
    fibs: Vec<bgpsim::Fib>,
    contracts: Vec<rcdc::contracts::DeviceContracts>,
    meta: MetadataService,
}

fn faulted_fixture() -> Fixture {
    let mut f = figure3();
    for (tor, leaves) in [
        (f.tors[0], [f.a[2], f.a[3]]),
        (f.tors[1], [f.a[0], f.a[1]]),
    ] {
        for leaf in leaves {
            let l = f.topology.link_between(tor, leaf).unwrap().id;
            f.topology.set_link_state(l, LinkState::OperDown);
        }
    }
    let fibs = simulate(&f.topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&f.topology);
    let contracts = generate_contracts(&meta);
    Fixture {
        f,
        fibs,
        contracts,
        meta,
    }
}

fn check_paper_claims(engine: &dyn Engine, fx: &Fixture) {
    let report =
        |d: DeviceId| engine.validate_device(&fx.fibs[d.0 as usize], &fx.contracts[d.0 as usize]);
    let f = &fx.f;

    // "ToR1, A1, A2, D1, and D2 have a contract failure for Prefix_B."
    for d in [f.tors[0], f.a[0], f.a[1], f.d[0], f.d[1]] {
        assert!(
            report(d).violations.iter().any(|v| v.prefix == f.prefixes[1]),
            "{} must violate Prefix_B under engine {}",
            fx.meta.device(d).name,
            engine.name()
        );
    }
    // "ToR2, A3, A4, D3, and D4 have a similar failure for Prefix_A."
    for d in [f.tors[1], f.a[2], f.a[3], f.d[2], f.d[3]] {
        assert!(
            report(d).violations.iter().any(|v| v.prefix == f.prefixes[0]),
            "{} must violate Prefix_A",
            fx.meta.device(d).name
        );
    }
    // "Both ToR1 and ToR2 have a default contract failure because the
    // default route in both devices have only two next hops compared to
    // the expected four."
    for d in [f.tors[0], f.tors[1]] {
        let r = report(d);
        let default_violation = r
            .violations
            .iter()
            .find(|v| v.prefix.is_default())
            .expect("default contract must fail");
        match &default_violation.reason {
            rcdc::report::ViolationReason::DefaultMismatch { expected, actual } => {
                assert_eq!(expected.len(), 4);
                assert_eq!(actual.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }
    // "R1, R2, D3, D4, A3, and A4 have no contract failures for
    // Prefix_B" — the availability of the longer route.
    for d in [f.r[0], f.r[1], f.d[2], f.d[3], f.a[2], f.a[3]] {
        assert!(
            !report(d).violations.iter().any(|v| v.prefix == f.prefixes[1]),
            "{} must be clean for Prefix_B",
            fx.meta.device(d).name
        );
    }
    // Regional spines carry no contracts and are wholly clean.
    for d in f.r {
        assert!(report(d).is_clean());
    }
}

#[test]
fn trie_engine_reproduces_the_worked_example() {
    let fx = faulted_fixture();
    check_paper_claims(&TrieEngine::new(), &fx);
}

#[test]
fn smt_engine_reproduces_the_worked_example() {
    let fx = faulted_fixture();
    check_paper_claims(&SmtEngine::new(), &fx);
}

#[test]
fn traffic_follows_the_longer_route_through_regional_spines() {
    // "First, such packets must follow default routes all the way up to
    // R1 or R2. … the packets must be able to follow the specific
    // routes in those devices to reach ToR2."
    let fx = faulted_fixture();
    let f = &fx.f;
    let analysis =
        rcdc::global_baseline::forwarding_analysis(&fx.fibs, &fx.meta, f.prefixes[1]);
    match analysis.from_device(f.tors[0]) {
        rcdc::global_baseline::PathInfo::Reaches { min_len, .. } => {
            assert_eq!(min_len, 6, "2 + 4 extra hops via the regional spine");
        }
        other => panic!("{other:?}"),
    }
    // And the reverse direction, ToR2 -> Prefix_A.
    let analysis =
        rcdc::global_baseline::forwarding_analysis(&fx.fibs, &fx.meta, f.prefixes[0]);
    match analysis.from_device(f.tors[1]) {
        rcdc::global_baseline::PathInfo::Reaches { min_len, .. } => {
            assert_eq!(min_len, 6);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn severity_ranks_regional_higher_than_spine_blast_radius() {
    // §2.4.4: "the severity of an error in R1 is higher than a similar
    // error in D1" — in our risk model both spine tiers are High, and
    // ToR-level missing specifics are Low; verify the ordering the
    // remediation queues rely on.
    let fx = faulted_fixture();
    let f = &fx.f;
    let engine = TrieEngine::new();
    let d1_report =
        engine.validate_device(&fx.fibs[f.d[0].0 as usize], &fx.contracts[f.d[0].0 as usize]);
    let d1_risk = d1_report
        .violations
        .iter()
        .map(|v| risk_of(v, &fx.meta))
        .max()
        .unwrap();
    assert_eq!(d1_risk, Risk::High);

    let tor_report = engine.validate_device(
        &fx.fibs[f.tors[0].0 as usize],
        &fx.contracts[f.tors[0].0 as usize],
    );
    let specific_risk = tor_report
        .violations
        .iter()
        .filter(|v| !v.prefix.is_default())
        .map(|v| risk_of(v, &fx.meta))
        .max()
        .unwrap();
    assert!(specific_risk < Risk::High);
}

#[test]
fn healthy_figure3_has_zero_violations_and_maximal_paths() {
    let f = figure3();
    let fibs = simulate(&f.topology, &SimConfig::healthy());
    let meta = MetadataService::from_topology(&f.topology);
    let report = Validator::new(&meta).build().run(&fibs);
    assert!(report.is_clean());
    // Redundant shortest paths: 4 per ToR pair (Intent 3).
    for (pi, &prefix) in f.prefixes.iter().enumerate() {
        let analysis = rcdc::global_baseline::forwarding_analysis(&fibs, &meta, prefix);
        for (ti, &tor) in f.tors.iter().enumerate() {
            if ti == pi {
                continue;
            }
            match analysis.from_device(tor) {
                rcdc::global_baseline::PathInfo::Reaches { paths, .. } => {
                    assert_eq!(paths, 4)
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
