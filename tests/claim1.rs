//! Claim 1 (§2.4.5), established constructively:
//!
//! > "If local contracts are preserved in the ToR, leaf, and spine
//! > devices, then all pairs of ToRs in the datacenter are reachable to
//! > one another through the maximal set of shortest paths provided by
//! > the redundant routers deployed in the datacenter."
//!
//! Strategy: over a sweep of Clos shapes and random fault sets, compare
//! the *local* verdict (contract validation + the §2.4.5 δ/C
//! obligations) with the *global* oracle (exact path analysis over the
//! merged snapshot). Local-clean must imply globally maximal shortest
//! paths; conversely, any loss of shortest-path redundancy must surface
//! as some local violation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rcdc::framework::check_local_obligations;
use rcdc::global_baseline::{forwarding_analysis, PathInfo};
use validatedc::prelude::*;

/// Expected shortest-path count between two ToRs in a healthy Clos:
/// intra-cluster = #leaves; inter-cluster = #leaves × (spines per
/// plane) × 1 (each spine reaches the destination cluster through
/// exactly one leaf, which serves the ToR directly).
fn expected_paths(p: &ClosParams) -> (u64, u64) {
    let intra = p.leaves_per_cluster as u64;
    let inter = p.leaves_per_cluster as u64 * (p.spines / p.leaves_per_cluster) as u64;
    (intra, inter)
}

fn sweep_shapes() -> Vec<ClosParams> {
    vec![
        ClosParams {
            clusters: 2,
            tors_per_cluster: 2,
            leaves_per_cluster: 4,
            spines: 4,
            regional_spines: 4,
            regional_groups: 2,
            prefixes_per_tor: 1,
        },
        ClosParams {
            clusters: 3,
            tors_per_cluster: 4,
            leaves_per_cluster: 2,
            spines: 6,
            regional_spines: 2,
            regional_groups: 1,
            prefixes_per_tor: 2,
        },
        ClosParams::default(),
    ]
}

#[test]
fn clean_local_contracts_imply_maximal_global_reachability() {
    for params in sweep_shapes() {
        let topology = build_clos(&params);
        let fibs = simulate(&topology, &SimConfig::healthy());
        let meta = MetadataService::from_topology(&topology);

        // Local: contracts and formal obligations all hold.
        let report = Validator::new(&meta).build().run(&fibs);
        assert!(report.is_clean(), "{params:?}");
        assert!(check_local_obligations(&fibs, &meta).is_empty());

        // Global: every ToR pair reaches on shortest paths with the
        // architecture's full redundancy.
        let (intra, inter) = expected_paths(&params);
        for fact in meta.prefix_facts() {
            let analysis = forwarding_analysis(&fibs, &meta, fact.prefix);
            for tor in topology.devices_with_role(Role::Tor) {
                if tor.id == fact.tor {
                    assert_eq!(analysis.from_device(tor.id), PathInfo::Local);
                    continue;
                }
                let same_cluster = tor.cluster == Some(fact.cluster);
                match analysis.from_device(tor.id) {
                    PathInfo::Reaches {
                        min_len,
                        max_len,
                        paths,
                    } => {
                        let expect_len = if same_cluster { 2 } else { 4 };
                        assert_eq!(min_len, expect_len, "{params:?}");
                        assert_eq!(max_len, expect_len, "only shortest paths");
                        assert_eq!(
                            paths,
                            if same_cluster { intra } else { inter },
                            "maximal redundancy {params:?}"
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
    }
}

#[test]
fn redundancy_loss_always_surfaces_as_a_local_violation() {
    // Contrapositive direction, probed with random fault injection:
    // whenever the global oracle sees *less* than maximal shortest-path
    // redundancy for some pair, at least one device must violate a
    // local contract.
    let mut rng = StdRng::seed_from_u64(0xC1A11);
    let params = ClosParams {
        clusters: 2,
        tors_per_cluster: 3,
        leaves_per_cluster: 3,
        spines: 3,
        regional_spines: 2,
        regional_groups: 1,
        prefixes_per_tor: 1,
    };
    let (intra, inter) = expected_paths(&params);
    for round in 0..20 {
        let mut topology = build_clos(&params);
        // Fail 1..4 random links.
        let link_count = topology.links().len();
        let n_faults = rng.gen_range(1..=4);
        let mut ids: Vec<u32> = (0..link_count as u32).collect();
        ids.shuffle(&mut rng);
        for &l in ids.iter().take(n_faults) {
            topology.set_link_state(dctopo::LinkId(l), LinkState::OperDown);
        }
        let fibs = simulate(&topology, &SimConfig::healthy());
        let meta = MetadataService::from_topology(&topology);
        let report = Validator::new(&meta).build().run(&fibs);

        let mut degraded = false;
        for fact in meta.prefix_facts() {
            let analysis = forwarding_analysis(&fibs, &meta, fact.prefix);
            for tor in topology.devices_with_role(Role::Tor) {
                if tor.id == fact.tor {
                    continue;
                }
                let same_cluster = tor.cluster == Some(fact.cluster);
                let expect_len = if same_cluster { 2 } else { 4 };
                let expect_paths = if same_cluster { intra } else { inter };
                match analysis.from_device(tor.id) {
                    PathInfo::Reaches {
                        min_len,
                        max_len,
                        paths,
                    } if min_len == expect_len
                        && max_len == expect_len
                        && paths == expect_paths => {}
                    _ => degraded = true,
                }
            }
        }
        if degraded {
            assert!(
                !report.is_clean(),
                "round {round}: global degradation with no local violation"
            );
        } else {
            // No degradation at all means the faults were absorbed…
            // but links feeding contracts failed, so local checks must
            // still hold only if the faults touched no validated hop.
            // (With ToR/leaf/spine faults they always do; just sanity
            // check consistency.)
            assert!(report.is_clean() || report.total_violations() > 0);
        }
    }
}

#[test]
fn contract_violations_dominate_framework_obligations() {
    // The concrete contracts are strictly stronger than the §2.4.5
    // δ/C obligations: contracts additionally police default-route
    // redundancy toward the regional spines (outside δ's domain). So
    // a clean contract pass implies the obligations hold, and any
    // obligation failure implies a dirty contract pass — but not the
    // converse.
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let params = ClosParams {
        clusters: 2,
        tors_per_cluster: 2,
        leaves_per_cluster: 2,
        spines: 2,
        regional_spines: 2,
        regional_groups: 1,
        prefixes_per_tor: 1,
    };
    for _ in 0..30 {
        let mut topology = build_clos(&params);
        let n_faults = rng.gen_range(0..=3);
        let link_count = topology.links().len() as u32;
        for _ in 0..n_faults {
            let l = rng.gen_range(0..link_count);
            topology.set_link_state(dctopo::LinkId(l), LinkState::OperDown);
        }
        let fibs = simulate(&topology, &SimConfig::healthy());
        let meta = MetadataService::from_topology(&topology);
        let report = Validator::new(&meta).build().run(&fibs);
        let obligations = check_local_obligations(&fibs, &meta);
        if report.is_clean() {
            assert!(obligations.is_empty(), "clean contracts imply obligations hold");
        }
        if !obligations.is_empty() {
            assert!(!report.is_clean(), "obligation failure must show as a violation");
        }
    }
}
