//! E10 — the §2.6.2 error taxonomy: every root cause the paper's
//! deployment uncovered is injected, detected, and classified.

use validatedc::prelude::*;

struct Scenario {
    name: &'static str,
    expect_cause: RootCause,
    expect_device: DeviceId,
}

fn run_scenario(
    mutate: impl FnOnce(&mut dctopo::generator::Figure3, &mut SimConfig) -> Scenario,
) -> (Scenario, Option<Classification>, usize) {
    let mut f = figure3();
    let mut config = SimConfig::healthy();
    let scenario = mutate(&mut f, &mut config);
    let fibs = simulate(&f.topology, &config);
    let meta = MetadataService::from_topology(&f.topology);
    let contracts = generate_contracts(&meta);
    let engine = TrieEngine::new();
    let d = scenario.expect_device;
    let report = engine.validate_device(&fibs[d.0 as usize], &contracts[d.0 as usize]);
    let count = report.violations.len();
    let classification = classify_device(d, &report, &f.topology, &meta);
    (scenario, classification, count)
}

#[test]
fn software_bug_1_rib_fib_inconsistency() {
    // "Those devices used significantly fewer next hops for the default
    // route compared to expected, and therefore violated the default
    // contracts."
    let (s, c, n) = run_scenario(|f, config| {
        *config = std::mem::take(config).with_rib_fib_bug(f.tors[0], 1);
        Scenario {
            name: "rib-fib",
            expect_cause: RootCause::RibFibInconsistency,
            expect_device: f.tors[0],
        }
    });
    let c = c.unwrap_or_else(|| panic!("{} must be detected", s.name));
    assert_eq!(c.cause, s.expect_cause);
    assert!(n >= 1);
}

#[test]
fn software_bug_2_layer2_ports() {
    // "BGP sessions could not be set up on any of the interfaces in
    // those devices, and therefore their routing tables violated all
    // forwarding contracts."
    let (s, c, n) = run_scenario(|f, config| {
        *config = std::mem::take(config).with_l2_port_bug(f.a[0]);
        Scenario {
            name: "l2-ports",
            expect_cause: RootCause::Layer2PortBug,
            expect_device: f.a[0],
        }
    });
    let c = c.unwrap();
    assert_eq!(c.cause, s.expect_cause);
    // ALL contracts violated: default + 4 specifics.
    assert_eq!(n, 5);
}

#[test]
fn hardware_failure_optical_cable() {
    let (s, c, _) = run_scenario(|f, _| {
        let l = f.topology.link_between(f.tors[0], f.a[0]).unwrap().id;
        f.topology.set_link_state(l, LinkState::OperDown);
        Scenario {
            name: "hardware",
            expect_cause: RootCause::HardwareFailure,
            expect_device: f.tors[0],
        }
    });
    let c = c.unwrap();
    assert_eq!(c.cause, s.expect_cause);
    assert_eq!(
        c.remediation,
        rcdc::classify::Remediation::ReplaceCable,
        "cabling faults are remediated by replacing the cables (§2.6.1)"
    );
}

#[test]
fn operation_drift_admin_shut_never_restored() {
    let (s, c, _) = run_scenario(|f, _| {
        let l = f.topology.link_between(f.tors[0], f.a[1]).unwrap().id;
        f.topology.set_link_state(l, LinkState::AdminShut);
        Scenario {
            name: "drift",
            expect_cause: RootCause::OperationDrift,
            expect_device: f.tors[0],
        }
    });
    let c = c.unwrap();
    assert_eq!(c.cause, s.expect_cause);
    assert_eq!(c.remediation, rcdc::classify::Remediation::UnshutAndMonitor);
}

#[test]
fn migration_asn_collision() {
    // "The top-of-rack switches violated all the specific contracts.
    // There were no reachability issues because the traffic … was
    // following default routes and reaching the correct destination."
    let f = figure3();
    let asn = f.topology.device(f.a[0]).asn;
    let mut config = SimConfig::healthy();
    for &leaf in &f.b {
        config = config.with_asn_override(leaf, asn);
    }
    let fibs = simulate(&f.topology, &config);
    let meta = MetadataService::from_topology(&f.topology);
    let contracts = generate_contracts(&meta);
    let engine = TrieEngine::new();

    let report = engine.validate_device(
        &fibs[f.tors[0].0 as usize],
        &contracts[f.tors[0].0 as usize],
    );
    // Specific contracts for the remote cluster violated; default fine.
    assert!(report.violations.iter().all(|v| !v.prefix.is_default()));
    assert_eq!(report.violations.len(), 2, "both cluster-B prefixes");
    let c = classify_device(f.tors[0], &report, &f.topology, &meta).unwrap();
    assert_eq!(c.cause, RootCause::MigrationAsnCollision);

    // "There were no reachability issues": defaults climb to the spine
    // tier, which still holds the specifics, so traffic is delivered —
    // the latent risk only materializes under additional link failures.
    match rcdc::global_baseline::forwarding_analysis(&fibs, &meta, f.prefixes[2])
        .from_device(f.tors[0])
    {
        rcdc::global_baseline::PathInfo::Reaches { min_len, .. } => {
            assert_eq!(min_len, 4, "delivered via default routes")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn policy_error_default_rejected() {
    let (s, c, _) = run_scenario(|f, config| {
        *config = std::mem::take(config).with_default_reject(f.tors[0]);
        Scenario {
            name: "route-map",
            expect_cause: RootCause::PolicyError,
            expect_device: f.tors[0],
        }
    });
    assert_eq!(c.unwrap().cause, s.expect_cause);
}

#[test]
fn policy_error_single_next_hop_ecmp() {
    let (s, c, _) = run_scenario(|f, config| {
        *config = std::mem::take(config).with_max_ecmp(f.tors[0], 1);
        Scenario {
            name: "ecmp",
            expect_cause: RootCause::EcmpMisconfiguration,
            expect_device: f.tors[0],
        }
    });
    assert_eq!(c.unwrap().cause, s.expect_cause);
}

#[test]
fn all_scenarios_detected_by_full_datacenter_run() {
    // One sweep with several simultaneous faults: the runner must mark
    // exactly the affected devices dirty.
    let mut f = figure3();
    let mut config = SimConfig::healthy();
    config = config.with_rib_fib_bug(f.tors[1], 1);
    config = config.with_max_ecmp(f.tors[3], 1);
    let cable = f.topology.link_between(f.tors[0], f.a[0]).unwrap().id;
    f.topology.set_link_state(cable, LinkState::OperDown);

    let fibs = simulate(&f.topology, &config);
    let meta = MetadataService::from_topology(&f.topology);
    let report = Validator::new(&meta).build().run(&fibs);
    assert!(!report.is_clean());

    let dirty: Vec<String> = report
        .reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_clean())
        .map(|(i, _)| meta.device(DeviceId(i as u32)).name.clone())
        .collect();
    // The injected ToRs are dirty…
    for d in [f.tors[0], f.tors[1], f.tors[3]] {
        assert!(dirty.contains(&meta.device(d).name), "{dirty:?}");
    }
    // …and so is A1 (lost its session to ToR1).
    assert!(dirty.contains(&meta.device(f.a[0]).name));
    // Regional spines are never dirty (no contracts).
    for r in f.r {
        assert!(!dirty.contains(&meta.device(r).name));
    }
}
