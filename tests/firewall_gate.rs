//! E12 — §3.5 distributed firewall templates: deny-overrides policies
//! derived from templates, gated at deployment. "Incorporating
//! validation as part of the deployment process eradicated the previous
//! case when restrictions would accidentally be omitted."

use secguru::firewall::{
    deployment_gate, standard_template, DeploymentDecision, FirewallTemplate,
};
use validatedc::prelude::*;

#[test]
fn healthy_template_deploys() {
    let t = standard_template();
    assert!(matches!(
        deployment_gate(&t.render(), &t.security_contracts()),
        DeploymentDecision::Deployed
    ));
}

#[test]
fn every_omitted_deny_is_blocked() {
    let t = standard_template();
    let policy = t.render();
    let contracts = t.security_contracts();
    for r in policy.rules().iter().filter(|r| r.action == Action::Deny) {
        let mutant = policy.without_rule(&r.name);
        assert!(
            matches!(
                deployment_gate(&mutant, &contracts),
                DeploymentDecision::Blocked(_)
            ),
            "omitting {} must block deployment",
            r.name
        );
    }
}

#[test]
fn weakened_deny_is_blocked_too() {
    // Automation bug variant: the deny range is narrowed instead of
    // dropped entirely.
    let t = standard_template();
    let policy = t.render();
    let contracts = t.security_contracts();
    let weakened: Vec<Rule> = policy
        .rules()
        .iter()
        .map(|r| {
            if r.name == "deny-infra-168.63.129.0/24" {
                let mut r = r.clone();
                // Narrow /24 deny to a /25: half the range escapes.
                r.filter.dst = "168.63.129.0/25".parse::<Prefix>().unwrap().range();
                r
            } else {
                r.clone()
            }
        })
        .collect();
    let mutant = Policy::new(policy.name.clone(), policy.convention, weakened);
    match deployment_gate(&mutant, &contracts) {
        DeploymentDecision::Blocked(failures) => {
            let w = failures[0].witness.unwrap();
            // The witness escapes through the upper half of the /24.
            assert!(w.dst_ip >= Ipv4::new(168, 63, 129, 128));
        }
        DeploymentDecision::Deployed => panic!("must block"),
    }
}

#[test]
fn template_scales_with_many_tenants() {
    // Larger template: many tenant ranges; everything still checks.
    let t = FirewallTemplate {
        vm_range: "10.44.0.0/16".parse().unwrap(),
        infra_ranges: vec![
            "168.63.129.0/24".parse().unwrap(),
            "169.254.169.0/24".parse().unwrap(),
        ],
        tenant_ranges: (0..40)
            .map(|i| {
                Prefix::new(Ipv4::new(10, 50 + i as u8, 0, 0), 16).unwrap()
            })
            .collect(),
        allowed_outbound: vec![
            "0.0.0.0/1".parse().unwrap(),
            "128.0.0.0/1".parse().unwrap(),
        ],
    };
    let policy = t.render();
    assert!(policy.len() > 40);
    assert!(matches!(
        deployment_gate(&policy, &t.security_contracts()),
        DeploymentDecision::Deployed
    ));
    // And a single omitted tenant deny among the 40 is still caught.
    let victim = "deny-tenant-10.70.0.0/16";
    let mutant = policy.without_rule(victim);
    assert!(matches!(
        deployment_gate(&mutant, &t.security_contracts()),
        DeploymentDecision::Blocked(_)
    ));
}

#[test]
fn deny_overrides_order_independence_under_the_gate() {
    // Deny-overrides means rule order must not matter; shuffle the
    // priorities and verify the gate's verdict is unchanged.
    let t = standard_template();
    let policy = t.render();
    let contracts = t.security_contracts();
    let reversed: Vec<Rule> = policy
        .rules()
        .iter()
        .rev()
        .enumerate()
        .map(|(i, r)| {
            let mut r = r.clone();
            r.priority = i as u32;
            r
        })
        .collect();
    let shuffled = Policy::new(policy.name.clone(), Convention::DenyOverrides, reversed);
    assert!(matches!(
        deployment_gate(&shuffled, &contracts),
        DeploymentDecision::Deployed
    ));
}
