//! The what-if sweeper's answers are properties of the *scenario*,
//! not of how the sweep was driven.
//!
//! Four equivalences over random fault-injection configs on the
//! Figure-3 fabric:
//!
//! * **Order insensitivity** — a scenario is a set: permuting its
//!   elements changes nothing, down to the spliced per-device reports.
//! * **Driver determinism** — serial and parallel sweeps return the
//!   same verdict (including the exact minimized counterexample), and
//!   in exhaustive mode the same failing-scenario list.
//! * **Counterexample minimality** — the reported scenario fails, and
//!   removing any single element from it makes the contracts pass.
//! * **k=0 ≡ plain validation** — sweeping nothing is exactly a cold
//!   validator pass over the baseline FIBs; a failing baseline yields
//!   the empty counterexample.
//! * **Symmetry pruning is sound for the verdict** — pruning may skip
//!   structurally interchangeable scenarios but never flips
//!   `is_robust`, and everything it reports failing also fails the
//!   unpruned sweep.
//!
//! The brute-force cross-check (incremental evaluation vs full
//! re-simulation plus cold validation) lives in the difftest `whatif`
//! oracle; these properties pin the sweep-level invariants.

use proptest::prelude::*;
use validatedc::prelude::*;

/// A replayable fault-injection config on the 20-device Figure 3.
#[derive(Debug, Clone)]
enum ConfigFault {
    Reject(usize),
    Ecmp(usize, usize),
    RibFib(usize, usize),
    L2Port(usize),
}

fn fault_strategy() -> impl Strategy<Value = Vec<ConfigFault>> {
    let one = prop_oneof![
        (0usize..20).prop_map(ConfigFault::Reject),
        (0usize..20, 1usize..3).prop_map(|(d, k)| ConfigFault::Ecmp(d, k)),
        (0usize..20, 1usize..3).prop_map(|(d, h)| ConfigFault::RibFib(d, h)),
        (0usize..20).prop_map(ConfigFault::L2Port),
    ];
    proptest::collection::vec(one, 0..3)
}

fn build_config(faults: &[ConfigFault]) -> SimConfig {
    faults.iter().fold(SimConfig::healthy(), |c, f| match *f {
        ConfigFault::Reject(d) => c.with_default_reject(DeviceId(d as u32)),
        ConfigFault::Ecmp(d, k) => c.with_max_ecmp(DeviceId(d as u32), k),
        ConfigFault::RibFib(d, h) => c.with_rib_fib_bug(DeviceId(d as u32), h),
        ConfigFault::L2Port(d) => c.with_l2_port_bug(DeviceId(d as u32)),
    })
}

fn fig3_sweeper(config: &SimConfig) -> WhatIfSweeper {
    let f = figure3();
    let meta = MetadataService::from_topology(&f.topology);
    Validator::new(&meta).build_whatif(&f.topology, config)
}

fn condition(i: usize) -> FailCondition {
    [
        FailCondition::AnyViolation,
        FailCondition::Blackhole,
        FailCondition::AtLeast(Risk::High),
    ][i % 3]
}

/// Distinct scenario elements picked by arbitrary indices.
fn scenario_from(universe: &[FailureElement], picks: &[usize]) -> Vec<FailureElement> {
    let mut out: Vec<FailureElement> = Vec::new();
    for &p in picks {
        let e = universe[p % universe.len()];
        if !out.contains(&e) {
            out.push(e);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scenario_order_is_irrelevant(
        picks in proptest::collection::vec(0usize..10_000, 0..4),
        rot in 0usize..4,
        cond_i in 0usize..3,
        faults in fault_strategy(),
    ) {
        let sweeper = fig3_sweeper(&build_config(&faults));
        let cond = condition(cond_i);
        let universe = sweeper.universe(true);
        let scenario = scenario_from(&universe, &picks);
        let mut permuted = scenario.clone();
        if !permuted.is_empty() {
            let rot = rot % permuted.len();
            permuted.rotate_left(rot);
            permuted.reverse();
        }
        let a = sweeper.check_scenario(&scenario, cond);
        let b = sweeper.check_scenario(&permuted, cond);
        prop_assert_eq!(a.fails, b.fails);
        prop_assert_eq!(a.matching_violations, b.matching_violations);
        prop_assert_eq!(sweeper.spliced_reports(&a), sweeper.spliced_reports(&b));
    }

    #[test]
    fn k0_equals_plain_validation(faults in fault_strategy()) {
        let config = build_config(&faults);
        let f = figure3();
        let meta = MetadataService::from_topology(&f.topology);
        let plain = Validator::new(&meta)
            .build()
            .run(&simulate(&f.topology, &config));
        let sweeper = fig3_sweeper(&config);
        let report = sweeper.sweep(&SweepOptions { k: 0, ..SweepOptions::default() });
        prop_assert_eq!(report.is_robust(), plain.is_clean());
        if let RobustnessVerdict::Counterexample(c) = &report.verdict {
            prop_assert!(c.scenario.is_empty(), "a failing baseline needs no failures");
        }
    }
}

proptest! {
    // Whole-sweep properties run hundreds of scenarios per case; fewer
    // cases keep the suite inside test-tier budgets.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn serial_and_parallel_sweeps_agree(
        k in 1usize..3,
        cond_i in 0usize..3,
        exhaustive in any::<bool>(),
        faults in fault_strategy(),
    ) {
        let sweeper = fig3_sweeper(&build_config(&faults));
        let base = SweepOptions {
            k,
            include_devices: true,
            exhaustive,
            condition: condition(cond_i),
            ..SweepOptions::default()
        };
        let serial = sweeper.sweep(&SweepOptions { threads: 1, ..base.clone() });
        let parallel = sweeper.sweep(&SweepOptions { threads: 4, ..base.clone() });
        prop_assert_eq!(&serial.verdict, &parallel.verdict);
        if exhaustive {
            prop_assert_eq!(&serial.failing, &parallel.failing);
            prop_assert_eq!(serial.scenarios_checked, parallel.scenarios_checked);
        }
    }

    #[test]
    fn counterexamples_are_minimal(
        k in 1usize..3,
        cond_i in 0usize..3,
        faults in fault_strategy(),
    ) {
        let sweeper = fig3_sweeper(&build_config(&faults));
        let cond = condition(cond_i);
        let report = sweeper.sweep(&SweepOptions {
            k,
            condition: cond,
            ..SweepOptions::default()
        });
        if let RobustnessVerdict::Counterexample(c) = &report.verdict {
            prop_assert!(sweeper.check_scenario(&c.scenario, cond).fails);
            for skip in 0..c.scenario.len() {
                let mut sub = c.scenario.clone();
                sub.remove(skip);
                prop_assert!(
                    !sweeper.check_scenario(&sub, cond).fails,
                    "still fails without {:?}",
                    c.scenario[skip]
                );
            }
        }
    }

    #[test]
    fn symmetry_pruning_never_flips_the_verdict(
        k in 1usize..3,
        cond_i in 0usize..3,
        faults in fault_strategy(),
    ) {
        let sweeper = fig3_sweeper(&build_config(&faults));
        let base = SweepOptions {
            k,
            exhaustive: true,
            condition: condition(cond_i),
            ..SweepOptions::default()
        };
        let full = sweeper.sweep(&base);
        let pruned = sweeper.sweep(&SweepOptions { symmetry: true, ..base });
        prop_assert_eq!(full.is_robust(), pruned.is_robust());
        for s in &pruned.failing {
            prop_assert!(full.failing.contains(s), "pruned sweep invented {s:?}");
        }
    }
}
